package analysis

import (
	"fmt"
	"math"
)

// TreeParams describes the regular-tree analysis model (Section 4.1): a
// group of n = a^d processes arranged in a tree of constant arity a and
// depth d, redundancy factor R, fanout F, where every process is interested
// in the observed event with probability Pd, messages are lost with
// probability Eps, and a fraction Tau of processes crash during the run.
type TreeParams struct {
	// A is the subgroup count per node (regular arity, Eq. 6).
	A int
	// D is the tree depth.
	D int
	// R is the redundancy factor (delegates per subgroup).
	R int
	// F is the gossip fanout.
	F float64
	// Pd is the matching rate: P[a given process is interested].
	Pd float64
	// Eps is the message loss probability ε.
	Eps float64
	// Tau is the crash probability τ.
	Tau float64
	// C is the additive constant of Pittel's asymptote (Eq. 3).
	C float64
}

func (p TreeParams) validate() error {
	if p.A < 1 || p.D < 1 || p.R < 1 {
		return fmt.Errorf("analysis: invalid tree shape a=%d d=%d R=%d", p.A, p.D, p.R)
	}
	if p.Pd < 0 || p.Pd > 1 {
		return fmt.Errorf("analysis: matching rate %g outside [0,1]", p.Pd)
	}
	if p.Eps < 0 || p.Eps >= 1 || p.Tau < 0 || p.Tau >= 1 {
		return fmt.Errorf("analysis: ε=%g τ=%g outside [0,1)", p.Eps, p.Tau)
	}
	return nil
}

// N returns the total group size a^d.
func (p TreeParams) N() int {
	n := 1
	for i := 0; i < p.D; i++ {
		n *= p.A
	}
	return n
}

// InterestAtDepth evaluates Eq. 7: the probability p_i that a depth-i group
// member is susceptible — interested itself or representing an interested
// process among the a^(d−i) leaves of its subtree:
//
//	p_i = 1 − (1 − p_d)^(a^(d−i)).
func (p TreeParams) InterestAtDepth(i int) float64 {
	leaves := math.Pow(float64(p.A), float64(p.D-i))
	return 1 - math.Pow(1-p.Pd, leaves)
}

// ViewSize evaluates Eq. 12: the number of processes a member knows at depth
// i — R·a for inner depths, a at the leaf depth.
func (p TreeParams) ViewSize(i int) int {
	if i == p.D {
		return p.A
	}
	return p.R * p.A
}

// TotalViewSize evaluates the sum of Eq. 12 over all depths:
// m = R·a·(d−1) + a ∈ O(d·R·n^(1/d)).
func (p TreeParams) TotalViewSize() int {
	return p.R*p.A*(p.D-1) + p.A
}

// DepthStats captures the per-depth quantities of the model.
type DepthStats struct {
	// Depth is i, 1 at the root group, D at the leaves.
	Depth int
	// Pi is the susceptibility probability p_i (Eq. 7).
	Pi float64
	// Mi is the view size m_i (Eq. 12).
	Mi int
	// EffSize is the susceptible audience m_i·p_i.
	EffSize float64
	// EffFanout is the rate-conditioned fanout F·p_i.
	EffFanout float64
	// Rounds is T_i = T_f(m_i·p_i, F·p_i), the loss-adjusted Pittel bound
	// for this depth (Eq. 11, 13).
	Rounds int
	// ExpectedInfected is E[s_{T_i}] from the flat chain (Eq. 14).
	ExpectedInfected float64
	// NodeInfectProb is r_i (Eq. 15): the probability that a depth-i node
	// (its R delegates; a single process at depth d) is infected after
	// gossiping at depth i, given its parent subgroup was infected.
	NodeInfectProb float64
}

// TreeModel precomputes the per-depth chains of the pmcast analysis.
type TreeModel struct {
	params TreeParams
	depths []DepthStats
}

// NewTreeModel validates parameters and evaluates the model at every depth.
func NewTreeModel(params TreeParams) (*TreeModel, error) {
	if err := params.validate(); err != nil {
		return nil, err
	}
	m := &TreeModel{params: params, depths: make([]DepthStats, params.D)}
	for i := 1; i <= params.D; i++ {
		ds, err := params.depthStats(i)
		if err != nil {
			return nil, err
		}
		m.depths[i-1] = ds
	}
	return m, nil
}

func (p TreeParams) depthStats(i int) (DepthStats, error) {
	pi := p.InterestAtDepth(i)
	mi := p.ViewSize(i)
	effSize := float64(mi) * pi
	effFanout := p.F * pi
	rounds := PittelLossAdjustedRounds(effSize, effFanout, p.C, p.Eps, p.Tau)

	ds := DepthStats{
		Depth:     i,
		Pi:        pi,
		Mi:        mi,
		EffSize:   effSize,
		EffFanout: effFanout,
		Rounds:    rounds,
	}

	n := int(math.Round(effSize))
	if n <= 0 || pi == 0 {
		return ds, nil
	}
	chain, err := NewChain(FlatParams{N: n, F: effFanout, Eps: p.Eps, Tau: p.Tau})
	if err != nil {
		return DepthStats{}, err
	}
	ds.ExpectedInfected = chain.ExpectedInfected(1, rounds)

	// Eq. 15: r_i = 1 − (1 − E[s_Ti]/(m_i·p_i))^(m_i/a). The exponent m_i/a
	// is R at inner depths (a node is R delegates) and 1 at the leaves (a
	// node is a single process).
	frac := ds.ExpectedInfected / effSize
	frac = min(max(frac, 0), 1)
	exponent := float64(mi) / float64(p.A)
	ds.NodeInfectProb = 1 - math.Pow(1-frac, exponent)
	return ds, nil
}

// Params returns the model parameters.
func (m *TreeModel) Params() TreeParams { return m.params }

// Depth returns the stats of depth i (1-based).
func (m *TreeModel) Depth(i int) DepthStats { return m.depths[i-1] }

// Depths returns a copy of all per-depth stats.
func (m *TreeModel) Depths() []DepthStats {
	out := make([]DepthStats, len(m.depths))
	copy(out, m.depths)
	return out
}

// TotalRounds evaluates Eq. 13: T_tot = Σ T_i, the (pessimistic) expected
// number of rounds for a multicast to traverse the whole tree.
func (m *TreeModel) TotalRounds() int {
	total := 0
	for _, d := range m.depths {
		total += d.Rounds
	}
	return total
}

// FlatRounds returns T_f(n·p_d, F·p_d) — the rounds a depth-1 ("flat")
// group of the same total size would need. Section 4.3 argues the tree costs
// about the same number of rounds as the flat group once the R-delegate
// head start per subgroup is accounted for.
func (m *TreeModel) FlatRounds() int {
	p := m.params
	return PittelLossAdjustedRounds(float64(p.N())*p.Pd, p.F*p.Pd, p.C, p.Eps, p.Tau)
}

// ExpectedInfectedEntities evaluates Eq. 18 at depth i: E[g_i] ≈ Π_{j≤i}
// r_j·a·p_j, the expected number of infected depth-i entities.
func (m *TreeModel) ExpectedInfectedEntities(i int) float64 {
	prod := 1.0
	for j := 1; j <= i; j++ {
		d := m.depths[j-1]
		prod *= d.NodeInfectProb * float64(m.params.A) * d.Pi
	}
	return prod
}

// ExpectedDelivered returns the expected number of infected processes (the
// full product of Eq. 18, i = d: leaf entities are processes).
func (m *TreeModel) ExpectedDelivered() float64 {
	return m.ExpectedInfectedEntities(m.params.D)
}

// Reliability returns the expected reliability degree: expected infected
// processes divided by the n·p_d effectively interested ones, clamped to
// [0, 1] (the product form can slightly exceed the audience for p_d → 1).
func (m *TreeModel) Reliability() float64 {
	audience := float64(m.params.N()) * m.params.Pd
	if audience <= 0 {
		return 0
	}
	return min(m.ExpectedDelivered()/audience, 1)
}

// EntityDistribution propagates the branching chain of Eq. 16–17 and returns
// P[g_i = k] for the requested depth as a dense slice indexed by k. The
// support grows like Π a·p_j, so this is O((n·p_d)²) at the leaf depth of
// large trees — use ExpectedDelivered when only the mean is needed.
func (m *TreeModel) EntityDistribution(depth int) []float64 {
	dist := []float64{0, 1} // g_0 = 1
	a := float64(m.params.A)
	for i := 1; i <= depth; i++ {
		d := m.depths[i-1]
		// Support bound: every parent entity exposes round(a·p_i) children.
		maxParents := len(dist) - 1
		maxChildren := int(math.Round(float64(maxParents) * a * d.Pi))
		next := make([]float64, maxChildren+1)
		for j, pj := range dist {
			if pj == 0 {
				continue
			}
			trials := int(math.Round(float64(j) * a * d.Pi))
			if trials == 0 {
				next[0] += pj
				continue
			}
			for k := 0; k <= trials; k++ {
				next[k] += pj * binomialPMF(trials, d.NodeInfectProb, k)
			}
		}
		dist = next
	}
	return dist
}

// ViewSizeByDepth returns, for a fixed population n and redundancy R, the
// total view size m(d) = R·⌈n^(1/d)⌉·(d−1) + ⌈n^(1/d)⌉ for each candidate
// depth 1…maxD (Section 4.3: m decreases with d and reaches its minimum near
// d = log n). Used by the membership-scalability experiment.
func ViewSizeByDepth(n, r, maxD int) []int {
	out := make([]int, maxD)
	for d := 1; d <= maxD; d++ {
		a := ceilRoot(n, d)
		out[d-1] = r*a*(d-1) + a
	}
	return out
}

// ceilRoot returns the smallest integer a with a^d ≥ n, robust against the
// floating-point drift of math.Pow (e.g. 10000^(1/4) = 10.000000000000002).
func ceilRoot(n, d int) int {
	if n <= 1 {
		return 1
	}
	a := int(math.Round(math.Pow(float64(n), 1/float64(d))))
	if a < 1 {
		a = 1
	}
	for intPow(a, d) < n {
		a++
	}
	for a > 1 && intPow(a-1, d) >= n {
		a--
	}
	return a
}

func intPow(a, d int) int {
	out := 1
	for i := 0; i < d; i++ {
		if out > 1<<40 { // avoid overflow; already ≥ any realistic n
			return out
		}
		out *= a
	}
	return out
}
