package analysis

import (
	"math"
	"testing"
)

func TestPittelBasic(t *testing.T) {
	// T(n,F) = ln n (1/F + 1/ln(F+1)).
	want := math.Log(1000) * (1.0/2 + 1/math.Log(3))
	if got := Pittel(1000, 2, 0); math.Abs(got-want) > 1e-12 {
		t.Errorf("Pittel(1000,2,0) = %g, want %g", got, want)
	}
	if got := Pittel(1000, 2, 1.5); math.Abs(got-(want+1.5)) > 1e-12 {
		t.Errorf("constant not added: %g", got)
	}
}

func TestPittelDegenerate(t *testing.T) {
	if Pittel(1, 2, 0) != 0 {
		t.Error("n=1 should need 0 rounds")
	}
	if Pittel(0.5, 2, 0) != 0 {
		t.Error("n<1 should need 0 rounds")
	}
	if Pittel(100, 0, 0) != 0 {
		t.Error("F=0 cannot spread")
	}
	if Pittel(100, -1, 0) != 0 {
		t.Error("negative F cannot spread")
	}
	if PittelRounds(1, 2, 0) != 0 {
		t.Error("rounds for n=1 should be 0")
	}
}

func TestPittelConstantFloorsTinyAudiences(t *testing.T) {
	// The additive constant c is not conditioned on n: it keeps tiny
	// audiences gossiping a floor number of rounds (conservative tuning,
	// Section 3.3).
	if got := Pittel(1, 2, 2); got != 2 {
		t.Errorf("Pittel(1,2,2) = %g, want 2", got)
	}
	if got := Pittel(0.5, 2, 2); got != 2 {
		t.Errorf("Pittel(0.5,2,2) = %g, want 2", got)
	}
	if got := Pittel(0, 2, 2); got != 0 {
		t.Errorf("Pittel(0,2,2) = %g, want 0 (no audience)", got)
	}
	if got := Pittel(5, 0, 2); got != 0 {
		t.Errorf("Pittel(5,0,2) = %g, want 0 (no fanout)", got)
	}
}

func TestPittelGrowsWithN(t *testing.T) {
	prev := 0.0
	for _, n := range []float64{10, 100, 1000, 10000, 100000} {
		cur := Pittel(n, 3, 0)
		if cur <= prev {
			t.Fatalf("Pittel not increasing at n=%g: %g <= %g", n, cur, prev)
		}
		prev = cur
	}
}

func TestPittelNonMonotoneInRate(t *testing.T) {
	// The paper (§5.1): with fixed n and F, as the matching rate p_d
	// decreases, T(n·p_d, F·p_d) first increases then collapses to 0 at
	// p_d = 1/n. Verify the non-monotonicity and the terminal zero.
	n, f := 10000.0, 2.0
	tAt := func(pd float64) float64 { return Pittel(n*pd, f*pd, 0) }
	mid := tAt(0.05)
	if mid <= tAt(1.0) {
		t.Errorf("expected T at pd=0.05 (%g) to exceed T at pd=1 (%g)", mid, tAt(1.0))
	}
	if tAt(1.0/n) != 0 {
		t.Errorf("T at pd=1/n should be 0, got %g", tAt(1.0/n))
	}
	if tAt(0.0001) >= mid {
		t.Errorf("T should collapse towards small pd: T(1e-4)=%g >= T(0.05)=%g", tAt(0.0001), mid)
	}
}

func TestPittelRoundsCeil(t *testing.T) {
	raw := Pittel(1000, 2, 0)
	got := PittelRounds(1000, 2, 0)
	if got != int(math.Ceil(raw)) {
		t.Errorf("rounds = %d, want ceil(%g)", got, raw)
	}
}

func TestPittelLossAdjusted(t *testing.T) {
	// Eq. 11: both n and F shrink by (1−ε)(1−τ).
	base := Pittel(1000, 2, 0)
	adj := PittelLossAdjusted(1000, 2, 0, 0.05, 0.01)
	factor := 0.95 * 0.99
	want := Pittel(1000*factor, 2*factor, 0)
	if math.Abs(adj-want) > 1e-12 {
		t.Errorf("loss adjusted = %g, want %g", adj, want)
	}
	// Losses reduce the effective fanout, so more rounds are needed than the
	// fanout-2 base would suggest for the smaller group... verify the
	// directional effect on fanout dominates: T with reduced F is larger at
	// the same n.
	if Pittel(1000, 2*factor, 0) <= base {
		t.Error("reduced fanout should increase rounds at fixed n")
	}
	if PittelLossAdjustedRounds(1, 2, 0, 0.1, 0.1) != 0 {
		t.Error("degenerate loss-adjusted rounds should be 0")
	}
}

func TestLogChoose(t *testing.T) {
	tests := []struct {
		n, k int
		want float64
	}{
		{5, 0, 1}, {5, 5, 1}, {5, 1, 5}, {5, 2, 10}, {10, 3, 120}, {52, 5, 2598960},
	}
	for _, tt := range tests {
		got := math.Exp(logChoose(tt.n, tt.k))
		if math.Abs(got-tt.want)/tt.want > 1e-9 {
			t.Errorf("C(%d,%d) = %g, want %g", tt.n, tt.k, got, tt.want)
		}
	}
	if !math.IsInf(logChoose(5, 6), -1) || !math.IsInf(logChoose(5, -1), -1) {
		t.Error("out-of-support logChoose should be -Inf")
	}
}

func TestBinomialPMF(t *testing.T) {
	// Sums to 1 and matches direct computation for a small case.
	n, p := 10, 0.3
	sum := 0.0
	for k := 0; k <= n; k++ {
		sum += binomialPMF(n, p, k)
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("pmf sums to %g", sum)
	}
	want := 120 * math.Pow(0.3, 3) * math.Pow(0.7, 7) // C(10,3)=120
	if got := binomialPMF(10, 0.3, 3); math.Abs(got-want) > 1e-12 {
		t.Errorf("pmf(10,0.3,3) = %g, want %g", got, want)
	}
	// Degenerate p.
	if binomialPMF(5, 0, 0) != 1 || binomialPMF(5, 0, 1) != 0 {
		t.Error("p=0 pmf wrong")
	}
	if binomialPMF(5, 1, 5) != 1 || binomialPMF(5, 1, 4) != 0 {
		t.Error("p=1 pmf wrong")
	}
	if binomialPMF(5, 0.5, 6) != 0 || binomialPMF(5, 0.5, -1) != 0 {
		t.Error("out-of-support pmf should be 0")
	}
}
