package analysis

import (
	"math"
	"testing"
)

func mustChain(t *testing.T, p FlatParams) *Chain {
	t.Helper()
	c, err := NewChain(p)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestFlatParamsValidate(t *testing.T) {
	bad := []FlatParams{
		{N: -1, F: 2},
		{N: 10, F: 2, Eps: 1},
		{N: 10, F: 2, Eps: -0.1},
		{N: 10, F: 2, Tau: 1},
		{N: 10, F: 2, Tau: -0.5},
	}
	for _, p := range bad {
		if _, err := NewChain(p); err == nil {
			t.Errorf("params %+v accepted", p)
		}
	}
}

func TestInfectionProb(t *testing.T) {
	// Eq. 8 exactly.
	p := FlatParams{N: 101, F: 2, Eps: 0.1, Tau: 0.05}
	want := 2.0 / 100.0 * 0.9 * 0.95
	if got := p.InfectionProb(); math.Abs(got-want) > 1e-15 {
		t.Errorf("p = %g, want %g", got, want)
	}
	// Clamped at 1 when F ≥ n−1.
	if got := (FlatParams{N: 2, F: 5}).InfectionProb(); got != 1 {
		t.Errorf("overfull fanout p = %g, want 1", got)
	}
	if got := (FlatParams{N: 1, F: 5}).InfectionProb(); got != 0 {
		t.Errorf("singleton p = %g, want 0", got)
	}
}

func TestTransitionRowsSumToOne(t *testing.T) {
	c := mustChain(t, FlatParams{N: 30, F: 2.5, Eps: 0.05, Tau: 0.01})
	for j := 0; j <= 30; j++ {
		sum := 0.0
		for k := 0; k <= 30; k++ {
			sum += c.TransitionProb(j, k)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("row %d sums to %g", j, sum)
		}
	}
}

func TestTransitionMonotone(t *testing.T) {
	c := mustChain(t, FlatParams{N: 20, F: 2})
	// Infected count never decreases: p_jk = 0 for k < j.
	for j := 0; j <= 20; j++ {
		for k := 0; k < j; k++ {
			if got := c.TransitionProb(j, k); got != 0 {
				t.Fatalf("p_%d%d = %g, want 0", j, k, got)
			}
		}
	}
	// State 0 and N are absorbing.
	if c.TransitionProb(0, 0) != 1 {
		t.Error("state 0 not absorbing")
	}
	if got := c.TransitionProb(20, 20); math.Abs(got-1) > 1e-12 {
		t.Errorf("full state not absorbing: %g", got)
	}
}

func TestDistributionConservesMass(t *testing.T) {
	c := mustChain(t, FlatParams{N: 40, F: 1.5, Eps: 0.1, Tau: 0.02})
	for _, rounds := range []int{0, 1, 5, 15} {
		dist := c.Distribution(1, rounds)
		sum := 0.0
		for _, p := range dist {
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("after %d rounds mass = %g", rounds, sum)
		}
	}
}

func TestExpectedInfectedGrowsAndSaturates(t *testing.T) {
	c := mustChain(t, FlatParams{N: 50, F: 3})
	prev := 0.0
	for rounds := 0; rounds <= 12; rounds++ {
		e := c.ExpectedInfected(1, rounds)
		if e < prev-1e-9 {
			t.Fatalf("E[s] decreased at round %d: %g < %g", rounds, e, prev)
		}
		prev = e
	}
	// With fanout 3 and plenty of rounds, nearly everyone is infected.
	if prev < 49 {
		t.Errorf("after 12 rounds E[s] = %g, want ≈50", prev)
	}
	if got := c.ExpectedInfected(1, 0); got != 1 {
		t.Errorf("0 rounds E[s] = %g, want 1", got)
	}
}

func TestLossReducesInfection(t *testing.T) {
	clean := mustChain(t, FlatParams{N: 60, F: 2})
	lossy := mustChain(t, FlatParams{N: 60, F: 2, Eps: 0.3})
	crashy := mustChain(t, FlatParams{N: 60, F: 2, Tau: 0.3})
	rounds := 6
	ec, el, ecr := clean.ExpectedInfected(1, rounds), lossy.ExpectedInfected(1, rounds), crashy.ExpectedInfected(1, rounds)
	if el >= ec {
		t.Errorf("loss did not slow infection: %g >= %g", el, ec)
	}
	if ecr >= ec {
		t.Errorf("crashes did not slow infection: %g >= %g", ecr, ec)
	}
	// ε and τ enter Eq. 8 symmetrically.
	if math.Abs(el-ecr) > 1e-9 {
		t.Errorf("symmetric ε/τ gave different results: %g vs %g", el, ecr)
	}
}

func TestHigherS0Faster(t *testing.T) {
	c := mustChain(t, FlatParams{N: 50, F: 2})
	if c.ExpectedInfected(3, 4) <= c.ExpectedInfected(1, 4) {
		t.Error("more initially infected should infect faster")
	}
	// s0 out of range is clamped.
	if got := c.ExpectedInfected(99, 0); got != 50 {
		t.Errorf("clamped s0 = %g", got)
	}
	if got := c.ExpectedInfected(-3, 0); got != 0 {
		t.Errorf("negative s0 = %g", got)
	}
}

func TestDeliveryProbability(t *testing.T) {
	c := mustChain(t, FlatParams{N: 25, F: 4})
	p := c.DeliveryProbability(1, 10)
	if p < 0.95 || p > 1 {
		t.Errorf("delivery = %g, want ≈1", p)
	}
	empty := mustChain(t, FlatParams{N: 0, F: 2})
	if empty.DeliveryProbability(1, 5) != 0 {
		t.Error("empty group delivery should be 0")
	}
}

func TestFlatReliabilityConvenience(t *testing.T) {
	got, err := FlatReliability(FlatParams{N: 100, F: 3, Eps: 0.05, Tau: 0.01}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got < 0.8 || got > 1 {
		t.Errorf("flat reliability = %g", got)
	}
	if _, err := FlatReliability(FlatParams{N: -1, F: 3}, 0); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestChainMatchesMonteCarloRoughly(t *testing.T) {
	// Cross-validate Eq. 9 against a tiny hand-rolled simulation of the same
	// stochastic model (each susceptible infected w.p. 1−q^j per round).
	params := FlatParams{N: 12, F: 2, Eps: 0.1}
	c := mustChain(t, params)
	wantE := c.ExpectedInfected(1, 3)

	q := 1 - params.InfectionProb()
	const trials = 60000
	var total float64
	rng := newSplitMix(12345)
	for tr := 0; tr < trials; tr++ {
		infected := 1
		for round := 0; round < 3; round++ {
			pReach := 1 - math.Pow(q, float64(infected))
			newly := 0
			for s := 0; s < params.N-infected; s++ {
				if rng.float64() < pReach {
					newly++
				}
			}
			infected += newly
		}
		total += float64(infected)
	}
	gotE := total / trials
	if math.Abs(gotE-wantE) > 0.15 {
		t.Errorf("Monte Carlo E[s]=%g vs chain %g", gotE, wantE)
	}
}

// splitMix is a tiny deterministic RNG for the cross-validation test,
// independent of math/rand ordering guarantees.
type splitMix struct{ state uint64 }

func newSplitMix(seed uint64) *splitMix { return &splitMix{state: seed} }

func (s *splitMix) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitMix) float64() float64 {
	return float64(s.next()>>11) / float64(1<<53)
}
