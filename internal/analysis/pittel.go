// Package analysis implements the stochastic model of pmcast (paper
// Section 4): Pittel's round asymptote (Eq. 3, 11), the flat-group infection
// Markov chain with message loss and crashes (Eq. 8–10, 14), and the
// tree-propagation model yielding the expected reliability degree
// (Eq. 7, 12, 13, 15–18).
//
// All heavy combinatorics run in log space (lgamma-based binomials), so the
// model is stable for group sizes well beyond the paper's n ≈ 10 000.
package analysis

import (
	"math"
)

// Pittel evaluates Eq. 3, the expected number of rounds to infect an entire
// group of (large) size n when every infected process gossips to F others
// per round:
//
//	T(n, F) = log n · (1/F + 1/log(F+1)) + c + O(1)
//
// with the constant c configurable (0 by default in pmcast, conservative
// values are the usual way to absorb environmental uncertainty, Section 3.3).
// The fanout may be fractional: pmcast conditions it by the matching rate
// (F·rate). Degenerate inputs yield 0: n ≤ 0 or F ≤ 0 mean gossip cannot or
// need not spread; at n ≤ 1 the logarithmic term vanishes (the paper notes T
// "becom[es] 0 for p_d = 1/n") and only the additive constant remains, so a
// conservative c keeps tiny audiences gossiping a floor number of rounds.
func Pittel(n, f, c float64) float64 {
	if n <= 0 || f <= 0 {
		return 0
	}
	t := c
	if n > 1 {
		t += math.Log(n) * (1/f + 1/math.Log(f+1))
	}
	return max(t, 0)
}

// PittelRounds is Pittel rounded up to a whole number of rounds, the bound
// used by the algorithm's gossip-buffer garbage collection (Figure 3 line 7).
func PittelRounds(n, f, c float64) int {
	t := Pittel(n, f, c)
	if t <= 0 {
		return 0
	}
	return int(math.Ceil(t))
}

// PittelLossAdjusted evaluates Eq. 11: Pittel's estimate with the effective
// group size and fanout both discounted by message loss ε and crash
// probability τ,
//
//	T_f(n, F) = T(n(1−ε)(1−τ), F(1−ε)(1−τ)).
func PittelLossAdjusted(n, f, c, eps, tau float64) float64 {
	adj := (1 - eps) * (1 - tau)
	return Pittel(n*adj, f*adj, c)
}

// PittelLossAdjustedRounds is PittelLossAdjusted rounded up.
func PittelLossAdjustedRounds(n, f, c, eps, tau float64) int {
	t := PittelLossAdjusted(n, f, c, eps, tau)
	if t <= 0 {
		return 0
	}
	return int(math.Ceil(t))
}

// logChoose returns log C(n, k) via lgamma; -Inf outside the support.
func logChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	if k == 0 || k == n {
		return 0
	}
	ln, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return ln - lk - lnk
}

// binomialPMF returns the Binomial(n, p) probability mass at k, computed in
// log space.
func binomialPMF(n int, p float64, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	switch {
	case p <= 0:
		if k == 0 {
			return 1
		}
		return 0
	case p >= 1:
		if k == n {
			return 1
		}
		return 0
	}
	lp := logChoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log1p(-p)
	return math.Exp(lp)
}
