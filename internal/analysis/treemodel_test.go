package analysis

import (
	"math"
	"testing"
)

// paperParams are the Figure 4/5 parameters: n ≈ 10000 (a=22, d=3), R=3, F=2.
func paperParams(pd float64) TreeParams {
	return TreeParams{A: 22, D: 3, R: 3, F: 2, Pd: pd, Eps: 0.01, Tau: 0.001}
}

func TestTreeParamsValidate(t *testing.T) {
	bad := []TreeParams{
		{A: 0, D: 3, R: 3, F: 2, Pd: 0.5},
		{A: 22, D: 0, R: 3, F: 2, Pd: 0.5},
		{A: 22, D: 3, R: 0, F: 2, Pd: 0.5},
		{A: 22, D: 3, R: 3, F: 2, Pd: -0.1},
		{A: 22, D: 3, R: 3, F: 2, Pd: 1.1},
		{A: 22, D: 3, R: 3, F: 2, Pd: 0.5, Eps: 1},
		{A: 22, D: 3, R: 3, F: 2, Pd: 0.5, Tau: -1},
	}
	for _, p := range bad {
		if _, err := NewTreeModel(p); err == nil {
			t.Errorf("params %+v accepted", p)
		}
	}
}

func TestN(t *testing.T) {
	if got := paperParams(0.5).N(); got != 22*22*22 {
		t.Errorf("N = %d", got)
	}
}

func TestInterestAtDepthEq7(t *testing.T) {
	p := paperParams(0.3)
	// p_d = pd at the leaves.
	if got := p.InterestAtDepth(3); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("p_3 = %g, want 0.3", got)
	}
	// p_i = 1−(1−pd)^(a^(d−i)).
	want2 := 1 - math.Pow(0.7, 22)
	if got := p.InterestAtDepth(2); math.Abs(got-want2) > 1e-12 {
		t.Errorf("p_2 = %g, want %g", got, want2)
	}
	want1 := 1 - math.Pow(0.7, 22*22)
	if got := p.InterestAtDepth(1); math.Abs(got-want1) > 1e-12 {
		t.Errorf("p_1 = %g, want %g", got, want1)
	}
	// Monotone: closer to the root, more likely susceptible.
	if !(p.InterestAtDepth(1) >= p.InterestAtDepth(2) && p.InterestAtDepth(2) >= p.InterestAtDepth(3)) {
		t.Error("p_i should grow towards the root")
	}
	// pd = 1 is invariant at all depths.
	full := paperParams(1)
	for i := 1; i <= 3; i++ {
		if got := full.InterestAtDepth(i); got != 1 {
			t.Errorf("pd=1: p_%d = %g", i, got)
		}
	}
}

func TestViewSizesEq12(t *testing.T) {
	p := paperParams(0.5)
	if p.ViewSize(1) != 66 || p.ViewSize(2) != 66 || p.ViewSize(3) != 22 {
		t.Errorf("view sizes = %d %d %d", p.ViewSize(1), p.ViewSize(2), p.ViewSize(3))
	}
	if p.TotalViewSize() != 66*2+22 {
		t.Errorf("total = %d", p.TotalViewSize())
	}
}

func TestViewSizeByDepth(t *testing.T) {
	// m(d) = R·a·(d−1)+a with a = ceil(n^(1/d)); minimum near d = log n.
	sizes := ViewSizeByDepth(10000, 3, 10)
	if len(sizes) != 10 {
		t.Fatalf("len = %d", len(sizes))
	}
	if sizes[0] != 10000 {
		t.Errorf("d=1 size = %d, want n", sizes[0])
	}
	// Depth 2 (a=100): 3·100·1+100 = 400; depth 4 (a=10): 3·10·3+10 = 100.
	if sizes[1] != 400 {
		t.Errorf("d=2 size = %d, want 400", sizes[1])
	}
	if sizes[3] != 100 {
		t.Errorf("d=4 size = %d, want 100", sizes[3])
	}
	// Decreasing early on (membership scalability claim).
	if !(sizes[0] > sizes[1] && sizes[1] > sizes[2]) {
		t.Errorf("sizes not initially decreasing: %v", sizes[:4])
	}
}

func TestTreeModelReliabilityHighForLargePd(t *testing.T) {
	m, err := NewTreeModel(paperParams(0.5))
	if err != nil {
		t.Fatal(err)
	}
	rel := m.Reliability()
	if rel < 0.9 || rel > 1 {
		t.Errorf("reliability at pd=0.5 = %g, want ≥0.9", rel)
	}
}

func TestTreeModelReliabilityDegradesForSmallPd(t *testing.T) {
	big, err := NewTreeModel(paperParams(0.5))
	if err != nil {
		t.Fatal(err)
	}
	small, err := NewTreeModel(paperParams(0.003))
	if err != nil {
		t.Fatal(err)
	}
	if small.Reliability() >= big.Reliability() {
		t.Errorf("small-pd reliability %g should be below large-pd %g",
			small.Reliability(), big.Reliability())
	}
}

func TestTreeModelDepthStats(t *testing.T) {
	m, err := NewTreeModel(paperParams(0.5))
	if err != nil {
		t.Fatal(err)
	}
	ds := m.Depths()
	if len(ds) != 3 {
		t.Fatalf("depths = %d", len(ds))
	}
	for i, d := range ds {
		if d.Depth != i+1 {
			t.Errorf("depth %d mislabeled %d", i+1, d.Depth)
		}
		if d.NodeInfectProb < 0 || d.NodeInfectProb > 1 {
			t.Errorf("r_%d = %g outside [0,1]", d.Depth, d.NodeInfectProb)
		}
		if d.ExpectedInfected > d.EffSize+1e-9 {
			t.Errorf("E[s] %g exceeds audience %g", d.ExpectedInfected, d.EffSize)
		}
	}
	// At pd=0.5, the top depths are almost surely interested: r_1, r_2 high.
	if ds[0].NodeInfectProb < 0.9 {
		t.Errorf("r_1 = %g, want ≈1", ds[0].NodeInfectProb)
	}
	if m.Depth(1) != ds[0] {
		t.Error("Depth accessor mismatch")
	}
}

func TestTotalRoundsVsFlatRounds(t *testing.T) {
	m, err := NewTreeModel(paperParams(0.5))
	if err != nil {
		t.Fatal(err)
	}
	ttot, tflat := m.TotalRounds(), m.FlatRounds()
	if ttot <= 0 || tflat <= 0 {
		t.Fatalf("rounds: tree %d flat %d", ttot, tflat)
	}
	// Eq. 13 is pessimistic: per-depth sum should not be smaller than the
	// flat bound by construction (d small groups each pay the startup cost).
	if ttot < tflat/2 {
		t.Errorf("tree rounds %d suspiciously below flat %d", ttot, tflat)
	}
}

func TestExpectedInfectedEntitiesMonotone(t *testing.T) {
	m, err := NewTreeModel(paperParams(0.4))
	if err != nil {
		t.Fatal(err)
	}
	// Entities multiply as we descend.
	prev := 0.0
	for i := 1; i <= 3; i++ {
		e := m.ExpectedInfectedEntities(i)
		if e < prev {
			t.Errorf("entities shrank at depth %d: %g < %g", i, e, prev)
		}
		prev = e
	}
	if got := m.ExpectedDelivered(); math.Abs(got-prev) > 1e-12 {
		t.Errorf("ExpectedDelivered %g != depth-d entities %g", got, prev)
	}
	// Cannot exceed the audience by much (clamped reliability ≤ 1).
	if m.Reliability() > 1 {
		t.Errorf("reliability %g > 1", m.Reliability())
	}
}

func TestEntityDistributionSmallTree(t *testing.T) {
	// Small tree where the full branching chain is cheap.
	params := TreeParams{A: 4, D: 2, R: 2, F: 2, Pd: 0.6}
	m, err := NewTreeModel(params)
	if err != nil {
		t.Fatal(err)
	}
	dist := m.EntityDistribution(2)
	sum, mean := 0.0, 0.0
	for k, p := range dist {
		if p < -1e-12 {
			t.Fatalf("negative probability at %d: %g", k, p)
		}
		sum += p
		mean += float64(k) * p
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("distribution mass = %g", sum)
	}
	// The chain mean and the product approximation (Eq. 18) agree loosely.
	prod := m.ExpectedDelivered()
	if prod > 0 && math.Abs(mean-prod)/prod > 0.35 {
		t.Errorf("chain mean %g vs product %g diverge", mean, prod)
	}
}

func TestZeroPdModel(t *testing.T) {
	m, err := NewTreeModel(TreeParams{A: 5, D: 2, R: 2, F: 2, Pd: 0})
	if err != nil {
		t.Fatal(err)
	}
	if m.Reliability() != 0 {
		t.Errorf("pd=0 reliability = %g", m.Reliability())
	}
	if m.ExpectedDelivered() != 0 {
		t.Errorf("pd=0 delivered = %g", m.ExpectedDelivered())
	}
}
