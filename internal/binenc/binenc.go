// Package binenc provides the small append-based binary encoding primitives
// shared by the wire codecs (varints, length-prefixed strings, IEEE floats,
// booleans) plus a cursor-style Reader with explicit error state. The format
// is deliberately simple: unsigned varints for lengths and integers
// (zig-zag for signed), little-endian IEEE 754 for floats.
package binenc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Decoding errors.
var (
	ErrShortBuffer = errors.New("binenc: short buffer")
	ErrOverflow    = errors.New("binenc: varint overflows")
	ErrTooLong     = errors.New("binenc: length prefix exceeds remaining data")
)

// AppendUvarint appends an unsigned varint.
func AppendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// UvarintLen returns the encoded size of an unsigned varint. Batch framing
// length-prefixes each section, so encoders size sections up front instead of
// encoding twice or shifting bytes.
func UvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// VarintLen returns the encoded size of a zig-zag signed varint.
func VarintLen(v int64) int {
	return UvarintLen(uint64(v)<<1 ^ uint64(v>>63))
}

// StringLen returns the encoded size of a length-prefixed string.
func StringLen(s string) int {
	return UvarintLen(uint64(len(s))) + len(s)
}

// AppendVarint appends a zig-zag signed varint.
func AppendVarint(b []byte, v int64) []byte {
	return binary.AppendVarint(b, v)
}

// AppendFloat appends a little-endian IEEE 754 double.
func AppendFloat(b []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
}

// AppendBool appends one byte (0 or 1).
func AppendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// AppendString appends a length-prefixed string.
func AppendString(b []byte, s string) []byte {
	b = AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// AppendBytes appends a length-prefixed byte slice.
func AppendBytes(b []byte, p []byte) []byte {
	b = AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

// Interner deduplicates decoded strings across frames. Gossip streams repeat
// the same small vocabulary endlessly — event origins, attribute names,
// membership keys — and a decoder that allocates a fresh string for each
// occurrence dominates the decode allocation profile. An Interner returns the
// canonical copy instead; lookups by byte slice compile to zero-allocation
// map accesses, so steady-state string decoding costs nothing.
//
// An Interner is not safe for concurrent use; give each decoder its own.
type Interner struct {
	m map[string]string
}

// maxInternerEntries bounds the table so an adversarial stream of unique
// strings cannot grow it without limit; when full, the table is dropped and
// rebuilt from the traffic that follows (the steady-state vocabulary).
// maxInternedLen keeps payload-sized strings out entirely: vocabulary
// strings (addresses, attribute names, membership keys) are short, and
// interning a unique multi-kilobyte attribute value would both pin it in
// memory and evict the vocabulary the table exists for. Together the bounds
// cap a table at maxInternerEntries·maxInternedLen bytes.
const (
	maxInternerEntries = 4096
	maxInternedLen     = 64
)

// NewInterner returns an empty intern table.
func NewInterner() *Interner {
	return &Interner{m: make(map[string]string)}
}

// Intern returns the canonical string equal to b, allocating only on first
// sight of a vocabulary-sized string; longer strings are copied through
// without being retained.
func (in *Interner) Intern(b []byte) string {
	if len(b) > maxInternedLen {
		return string(b)
	}
	if s, ok := in.m[string(b)]; ok { // no-alloc lookup: string(b) is not retained
		return s
	}
	if len(in.m) >= maxInternerEntries {
		in.m = make(map[string]string)
	}
	s := string(b)
	in.m[s] = s
	return s
}

// Reader is a sticky-error cursor over an encoded buffer: after the first
// failure every further read returns zero values, and Err reports the cause.
type Reader struct {
	buf    []byte
	off    int
	err    error
	intern *Interner
}

// NewReader wraps a buffer.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// SetIntern routes every String read through the given intern table (nil
// disables interning). Reset to reuse the reader over a new buffer.
func (r *Reader) SetIntern(in *Interner) { r.intern = in }

// Reset points the reader at a new buffer, clearing offset and error but
// keeping the intern table — the decoder-scratch-reuse pattern of the wire
// hot path.
func (r *Reader) Reset(buf []byte) {
	r.buf = buf
	r.off = 0
	r.err = nil
}

// Err returns the first decoding error, if any.
func (r *Reader) Err() error { return r.err }

// Fail records a caller-detected semantic error (an unknown wire tag, an
// out-of-domain value), poisoning every further read exactly like a
// malformed buffer would. Codecs use it so "structurally readable but
// meaningless" inputs surface as decode errors instead of zero values.
func (r *Reader) Fail(err error) { r.fail(err) }

// Len returns the number of unread bytes.
func (r *Reader) Len() int { return len(r.buf) - r.off }

// fail records the first error.
func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = fmt.Errorf("%w at offset %d", err, r.off)
	}
}

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n == 0 {
		r.fail(ErrShortBuffer)
		return 0
	}
	if n < 0 {
		r.fail(ErrOverflow)
		return 0
	}
	r.off += n
	return v
}

// Varint reads a zig-zag signed varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n == 0 {
		r.fail(ErrShortBuffer)
		return 0
	}
	if n < 0 {
		r.fail(ErrOverflow)
		return 0
	}
	r.off += n
	return v
}

// Float reads an IEEE 754 double.
func (r *Reader) Float() float64 {
	if r.err != nil {
		return 0
	}
	if r.Len() < 8 {
		r.fail(ErrShortBuffer)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.buf[r.off:]))
	r.off += 8
	return v
}

// Byte reads one raw byte.
func (r *Reader) Byte() byte {
	if r.err != nil {
		return 0
	}
	if r.Len() < 1 {
		r.fail(ErrShortBuffer)
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

// Bool reads one byte as a boolean.
func (r *Reader) Bool() bool {
	if r.err != nil {
		return false
	}
	if r.Len() < 1 {
		r.fail(ErrShortBuffer)
		return false
	}
	v := r.buf[r.off] != 0
	r.off++
	return v
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.Uvarint()
	if r.err != nil {
		return ""
	}
	if uint64(r.Len()) < n {
		r.fail(ErrTooLong)
		return ""
	}
	raw := r.buf[r.off : r.off+int(n)]
	r.off += int(n)
	if r.intern != nil {
		return r.intern.Intern(raw)
	}
	return string(raw)
}

// Bytes reads a length-prefixed byte slice (copied).
func (r *Reader) Bytes() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if uint64(r.Len()) < n {
		r.fail(ErrTooLong)
		return nil
	}
	out := make([]byte, n)
	copy(out, r.buf[r.off:r.off+int(n)])
	r.off += int(n)
	return out
}

// Raw reads exactly n raw bytes with no length prefix (copied). Callers
// that already know a payload's length from surrounding framing — the
// fixed-size FEC symbols of a batch's repair section — use it to avoid
// encoding the length twice.
func (r *Reader) Raw(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.Len() < n {
		r.fail(ErrShortBuffer)
		return nil
	}
	out := make([]byte, n)
	copy(out, r.buf[r.off:r.off+n])
	r.off += n
	return out
}

// Count reads a length prefix and validates it against a per-element
// minimum size, so corrupt inputs cannot trigger huge allocations.
func (r *Reader) Count(minElemSize int) int {
	n := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if minElemSize < 1 {
		minElemSize = 1
	}
	if n > uint64(r.Len()/minElemSize)+1 {
		r.fail(ErrTooLong)
		return 0
	}
	return int(n)
}
