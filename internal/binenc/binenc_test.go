package binenc

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestScalarRoundTrips(t *testing.T) {
	f := func(u uint64, i int64, fl float64, s string, b bool) bool {
		if math.IsNaN(fl) {
			fl = 0 // NaN != NaN; use a sentinel
		}
		var buf []byte
		buf = AppendUvarint(buf, u)
		buf = AppendVarint(buf, i)
		buf = AppendFloat(buf, fl)
		buf = AppendString(buf, s)
		buf = AppendBool(buf, b)
		buf = AppendBytes(buf, []byte(s))

		r := NewReader(buf)
		if got := r.Uvarint(); got != u {
			return false
		}
		if got := r.Varint(); got != i {
			return false
		}
		if got := r.Float(); got != fl {
			return false
		}
		if got := r.String(); got != s {
			return false
		}
		if got := r.Bool(); got != b {
			return false
		}
		if got := r.Bytes(); string(got) != s {
			return false
		}
		return r.Err() == nil && r.Len() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestByte(t *testing.T) {
	r := NewReader([]byte{0xAB})
	if got := r.Byte(); got != 0xAB {
		t.Errorf("byte = %x", got)
	}
	if r.Byte() != 0 || r.Err() == nil {
		t.Error("reading past the end must fail")
	}
}

func TestShortBufferErrors(t *testing.T) {
	tests := []struct {
		name string
		read func(*Reader)
	}{
		{"uvarint", func(r *Reader) { r.Uvarint() }},
		{"varint", func(r *Reader) { r.Varint() }},
		{"float", func(r *Reader) { r.Float() }},
		{"bool", func(r *Reader) { r.Bool() }},
		{"string", func(r *Reader) { _ = r.String() }},
		{"bytes", func(r *Reader) { r.Bytes() }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r := NewReader(nil)
			tt.read(r)
			if r.Err() == nil {
				t.Error("no error on empty buffer")
			}
		})
	}
}

func TestStickyError(t *testing.T) {
	r := NewReader([]byte{0x01})
	r.Float() // fails: needs 8 bytes
	first := r.Err()
	if first == nil {
		t.Fatal("expected error")
	}
	// Subsequent reads keep the first error and return zeros.
	if r.Uvarint() != 0 || r.Byte() != 0 {
		t.Error("reads after error returned values")
	}
	if !errors.Is(r.Err(), ErrShortBuffer) {
		t.Errorf("err = %v", r.Err())
	}
}

func TestLengthPrefixValidation(t *testing.T) {
	// A huge declared length with a tiny buffer must fail, not allocate.
	var buf []byte
	buf = AppendUvarint(buf, 1<<40)
	r := NewReader(buf)
	if got := r.String(); got != "" || r.Err() == nil {
		t.Error("oversized string length accepted")
	}
	r2 := NewReader(buf)
	if n := r2.Count(8); n != 0 || r2.Err() == nil {
		t.Error("oversized count accepted")
	}
}

func TestCountAcceptsTightFits(t *testing.T) {
	var buf []byte
	buf = AppendUvarint(buf, 3)
	buf = append(buf, 1, 2, 3)
	r := NewReader(buf)
	if n := r.Count(1); n != 3 || r.Err() != nil {
		t.Errorf("count = %d, err = %v", n, r.Err())
	}
}

func TestVarintOverflow(t *testing.T) {
	// 11 bytes of continuation bits overflow a uvarint.
	buf := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01}
	r := NewReader(buf)
	r.Uvarint()
	if !errors.Is(r.Err(), ErrOverflow) {
		t.Errorf("err = %v", r.Err())
	}
}
