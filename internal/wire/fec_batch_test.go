package wire

import (
	"bytes"
	"fmt"
	"testing"

	"pmcast/internal/event"
	"pmcast/internal/fec"
)

// codedBatch builds a batch of n gossips coded into generations of k
// source symbols with r repairs each, the way the protocol stage does.
func codedBatch(t testing.TB, n, k, r int) Batch {
	t.Helper()
	b := sampleBatch(n)
	enc := fec.NewEncoder(k, r)
	srcs := make([]fec.Source, n)
	for i, g := range b.Gossips {
		srcs[i] = fec.Source{
			ID:   g.Event.ID(),
			Meta: fec.Meta{Depth: g.Depth, Rate: g.Rate, Round: g.Round},
			Body: AppendEventBody(nil, g.Event),
		}
	}
	b.FEC = enc.Encode(srcs)
	return b
}

func codedFullBatch(t testing.TB, n, k, r int) Batch {
	t.Helper()
	b := codedBatch(t, n, k, r)
	full := fullBatch()
	b.Update, b.Digest, b.Heartbeat = full.Update, full.Digest, full.Heartbeat
	return b
}

func sameFEC(a, b []fec.Generation) error {
	if len(a) != len(b) {
		return fmt.Errorf("generation count %d vs %d", len(a), len(b))
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.Gen != y.Gen || x.K != y.K || x.R != y.R || x.SymLen != y.SymLen {
			return fmt.Errorf("generation %d header %+v vs %+v", i, x, y)
		}
		if len(x.IDs) != len(y.IDs) {
			return fmt.Errorf("generation %d id count", i)
		}
		for j := range x.IDs {
			if x.IDs[j] != y.IDs[j] {
				return fmt.Errorf("generation %d id %d", i, j)
			}
			if x.Meta[j] != y.Meta[j] {
				return fmt.Errorf("generation %d meta %d: %+v vs %+v", i, j, x.Meta[j], y.Meta[j])
			}
		}
		if len(x.Repairs) != len(y.Repairs) {
			return fmt.Errorf("generation %d repair count %d vs %d", i, len(x.Repairs), len(y.Repairs))
		}
		for j := range x.Repairs {
			if x.Repairs[j].Index != y.Repairs[j].Index || !bytes.Equal(x.Repairs[j].Data, y.Repairs[j].Data) {
				return fmt.Errorf("generation %d repair %d", i, j)
			}
		}
	}
	return nil
}

func TestCodedBatchRoundTrip(t *testing.T) {
	in := codedFullBatch(t, 7, 4, 2)
	out := roundTrip(t, in).(Batch)
	if len(out.Gossips) != 7 {
		t.Fatalf("gossips = %d", len(out.Gossips))
	}
	if err := sameFEC(in.FEC, out.FEC); err != nil {
		t.Fatal(err)
	}
	if out.Update == nil || out.Digest == nil || out.Heartbeat == nil {
		t.Fatalf("membership tail lost: %+v", out)
	}
}

func TestCodedBatchEncodedSizeMatches(t *testing.T) {
	for _, b := range []Batch{codedBatch(t, 1, 8, 1), codedBatch(t, 9, 4, 3), codedFullBatch(t, 5, 2, 2)} {
		enc, err := Encode(b)
		if err != nil {
			t.Fatal(err)
		}
		if got := EncodedSize(b); got != len(enc) {
			t.Fatalf("EncodedSize = %d, encoded %d bytes", got, len(enc))
		}
	}
}

// TestCodedBatchEachOrder pins the canonical decomposition: gossips first,
// then one fec.Repair per repair symbol, then the membership payloads.
func TestCodedBatchEachOrder(t *testing.T) {
	b := codedFullBatch(t, 5, 4, 2)
	var kinds []string
	repairs := 0
	b.Each(func(payload any) {
		kinds = append(kinds, fmt.Sprintf("%T", payload))
		if rp, ok := payload.(fec.Repair); ok {
			repairs++
			if rp.K < 1 || rp.SymLen != len(rp.Data) || len(rp.IDs) != rp.K || len(rp.Meta) != rp.K {
				t.Fatalf("malformed flattened repair: %+v", rp)
			}
		}
	})
	want := []string{
		"core.Gossip", "core.Gossip", "core.Gossip", "core.Gossip", "core.Gossip",
		"fec.Repair", "fec.Repair", "fec.Repair", "fec.Repair",
		"membership.Update", "membership.Digest", "membership.Heartbeat",
	}
	if fmt.Sprint(kinds) != fmt.Sprint(want) {
		t.Fatalf("order = %v, want %v", kinds, want)
	}
	if got := b.Parts(); got != len(want) {
		t.Fatalf("Parts = %d, want %d", got, len(want))
	}
	_ = repairs
}

// TestPreFECDecoderRejectsCodedBatch pins the version gate: a coded batch
// sets a flag bit outside the pre-FEC mask, and this decoder applies the
// same rule to bits beyond its own mask — unknown flags are a clean
// ErrBadPayload, never a misparse.
func TestPreFECDecoderRejectsCodedBatch(t *testing.T) {
	enc, err := Encode(codedBatch(t, 4, 4, 1))
	if err != nil {
		t.Fatal(err)
	}
	if enc[1]&batchHasFEC == 0 {
		t.Fatal("coded batch must set the FEC flag bit")
	}
	const preFECMask = batchHasUpdate | batchHasDigest | batchHasHeartbeat
	if enc[1]&^byte(preFECMask) == 0 {
		t.Fatal("coded batch flags fit the pre-FEC mask; old decoders would misparse")
	}
	// The same future-bit rule in this decoder:
	bad := append([]byte(nil), enc...)
	bad[1] |= 1 << 4
	if _, err := Decode(bad); err == nil {
		t.Fatal("unknown future flag bit must be rejected")
	}
}

func TestCodedBatchDecodeRejectsCorruptFEC(t *testing.T) {
	enc, err := Encode(codedBatch(t, 4, 4, 2))
	if err != nil {
		t.Fatal(err)
	}
	// Truncations anywhere in the FEC section must error, not panic or
	// return bogus generations.
	for cut := len(enc) - 1; cut > len(enc)-40 && cut > 0; cut-- {
		if _, err := Decode(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}
}

// TestSplitBatchCodedBoundaryExact is the MTU±1 test: at exactly the
// encoded size one chunk suffices; one byte under forces a split; and at
// every limit each emitted chunk re-measures within the budget with no
// part lost.
func TestSplitBatchCodedBoundaryExact(t *testing.T) {
	m := codedFullBatch(t, 9, 4, 2)
	full := EncodedSize(m)

	chunks, err := SplitBatch(m, full)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 1 {
		t.Fatalf("at limit=size: %d chunks, want 1", len(chunks))
	}

	chunks, err = SplitBatch(m, full-1)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) < 2 {
		t.Fatalf("at limit=size-1: %d chunks, want ≥ 2", len(chunks))
	}
	checkSplit(t, m, chunks, full-1)

	// Sweep a window of limits around practical MTUs down to tiny budgets:
	// every chunk must measure within the limit, bit-exactly.
	for limit := full + 1; limit > 120; limit-- {
		chunks, err := SplitBatch(m, limit)
		if err != nil {
			t.Fatalf("limit %d: %v", limit, err)
		}
		checkSplit(t, m, chunks, limit)
	}
}

// checkSplit verifies a split: every chunk fits, encodes to its measured
// size, and the union of parts is exactly the original batch.
func checkSplit(t *testing.T, m Batch, chunks []Batch, limit int) {
	t.Helper()
	var gossips []string
	repairs := map[string]int{}
	tails := 0
	for i, c := range chunks {
		enc, err := Encode(c)
		if err != nil {
			t.Fatalf("chunk %d: %v", i, err)
		}
		if len(enc) > limit {
			t.Fatalf("limit %d: chunk %d encodes to %d bytes", limit, i, len(enc))
		}
		if got := EncodedSize(c); got != len(enc) {
			t.Fatalf("chunk %d: EncodedSize %d, encoded %d", i, got, len(enc))
		}
		for _, g := range c.Gossips {
			gossips = append(gossips, g.Event.ID().String())
		}
		for _, gen := range c.FEC {
			for _, rs := range gen.Repairs {
				repairs[fmt.Sprintf("%d/%d", gen.Gen, rs.Index)]++
			}
		}
		if c.Update != nil || c.Digest != nil || c.Heartbeat != nil {
			if i != 0 {
				t.Fatalf("membership tail on chunk %d", i)
			}
			tails++
		}
	}
	var want []string
	for _, g := range m.Gossips {
		want = append(want, g.Event.ID().String())
	}
	if fmt.Sprint(gossips) != fmt.Sprint(want) {
		t.Fatalf("limit %d: gossip order broken: %v", limit, gossips)
	}
	wantRepairs := 0
	for _, gen := range m.FEC {
		wantRepairs += len(gen.Repairs)
		for _, rs := range gen.Repairs {
			if repairs[fmt.Sprintf("%d/%d", gen.Gen, rs.Index)] != 1 {
				t.Fatalf("limit %d: repair %d/%d carried %d times", limit, gen.Gen, rs.Index,
					repairs[fmt.Sprintf("%d/%d", gen.Gen, rs.Index)])
			}
		}
	}
	if len(repairs) != wantRepairs {
		t.Fatalf("limit %d: %d distinct repairs, want %d", limit, len(repairs), wantRepairs)
	}
	if hasTail := m.Update != nil || m.Digest != nil || m.Heartbeat != nil; hasTail && tails != 1 {
		t.Fatalf("limit %d: membership tail on %d chunks", limit, tails)
	}
}

// TestSplitBatchCodedReassembles proves the split is invisible to the
// receiver: decoding every chunk and feeding the parts to an assembler
// recovers a generation even when its sources and repairs landed in
// different datagrams and some sources were lost.
func TestSplitBatchCodedReassembles(t *testing.T) {
	m := codedBatch(t, 8, 4, 2)
	full := EncodedSize(m)
	chunks, err := SplitBatch(m, full/3)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) < 3 {
		t.Fatalf("want ≥ 3 chunks, got %d", len(chunks))
	}
	asm := fec.NewAssembler()
	lost := map[event.ID]bool{
		m.Gossips[1].Event.ID(): true,
		m.Gossips[6].Event.ID(): true,
	}
	var recovered []fec.Recovered
	for _, c := range chunks {
		dec, err := Decode(mustEncode(t, c))
		if err != nil {
			t.Fatal(err)
		}
		b := dec.(Batch)
		for _, g := range b.Gossips {
			if lost[g.Event.ID()] {
				continue
			}
			recovered = append(recovered, asm.ObserveSource(g.Event.ID(), AppendEventBody(nil, g.Event))...)
		}
		for _, gen := range b.FEC {
			for _, rp := range gen.Split() {
				recovered = append(recovered, asm.ObserveRepair("s", rp)...)
			}
		}
	}
	if len(recovered) != len(lost) {
		t.Fatalf("recovered %d of %d lost gossips", len(recovered), len(lost))
	}
	for _, rec := range recovered {
		ev, err := DecodeEventBody(rec.Body)
		if err != nil {
			t.Fatalf("recovered body does not decode: %v", err)
		}
		if ev.ID() != rec.ID || !lost[ev.ID()] {
			t.Fatalf("recovered wrong event: %v", ev.ID())
		}
		if rec.Meta.Depth < 1 {
			t.Fatalf("recovered meta lost its depth: %+v", rec.Meta)
		}
	}
}

func mustEncode(t *testing.T, msg any) []byte {
	t.Helper()
	enc, err := Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	return enc
}
