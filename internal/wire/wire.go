// Package wire frames pmcast protocol messages into a compact binary format
// so the runtime can run over a real byte-oriented transport (UDP/TCP). The
// in-memory transport passes Go values directly; this codec is the seam a
// production deployment plugs a socket into.
//
// Frame format: one kind byte followed by the message payload. All integers
// are varints, floats IEEE 754 little-endian, collections length-prefixed
// (package binenc).
//
// The Batch frame is the round envelope of the batched gossip pipeline: every
// gossip a sender owes one peer in one round, each in a length-prefixed
// section, plus piggybacked membership payloads (update, digest, heartbeat)
// that would otherwise each cost their own envelope. Encoders are
// append-style so hot paths reuse buffers (GetBuffer/PutBuffer); the Decoder
// type interns repeated strings so steady-state decoding stays within one
// allocation per event.
package wire

import (
	"errors"
	"fmt"
	"sync"

	"pmcast/internal/addr"
	"pmcast/internal/binenc"
	"pmcast/internal/core"
	"pmcast/internal/event"
	"pmcast/internal/fec"
	"pmcast/internal/interest"
	"pmcast/internal/membership"
)

// Decoding errors.
var (
	ErrUnknownKind = errors.New("wire: unknown message kind")
	ErrBadPayload  = errors.New("wire: malformed payload")
	ErrOversized   = errors.New("wire: gossip exceeds the datagram budget")
)

// Message kinds start at 1 so a zero byte is detectably invalid.
const (
	kindGossip byte = iota + 1
	kindDigest
	kindUpdate
	kindJoinRequest
	kindLeave
	kindHeartbeat
	kindBatch
)

// Batch flag bits (presence of piggybacked sections). The FEC bit is the
// coded-gossip wire version gate: decoders reject flags outside their mask,
// so a pre-FEC decoder drops a coded batch with a clean ErrBadPayload
// instead of misparsing it, and an uncoded batch (no FEC section, bit
// clear) remains byte-identical to the pre-FEC format.
const (
	batchHasUpdate    byte = 1 << 0
	batchHasDigest    byte = 1 << 1
	batchHasHeartbeat byte = 1 << 2
	batchHasFEC       byte = 1 << 3
	batchFlagMask          = batchHasUpdate | batchHasDigest | batchHasHeartbeat | batchHasFEC
)

// Batch is one per-peer round envelope: the multi-event gossip section plus
// any membership payloads piggybacked onto the same round. The canonical
// sub-message order — gossips, update, digest, heartbeat — matches the order
// an unbatched sender would emit the same messages on one link, which is what
// makes batching a pure envelope-level aggregation (see the equivalence
// property test in internal/harness).
type Batch struct {
	Gossips []core.Gossip
	// FEC carries the repair symbols of the coded-gossip extension: each
	// generation codes a run of this round's gossip sections, and any k of
	// its k+r symbols reconstruct the originals on the receiver.
	FEC       []fec.Generation
	Update    *membership.Update
	Digest    *membership.Digest
	Heartbeat *membership.Heartbeat
}

// Parts returns the number of sub-messages carried. Each repair symbol
// counts as one part: fabrics decompose batches per sub-message for fault
// draws and drop accounting.
func (b Batch) Parts() int {
	n := len(b.Gossips)
	for _, g := range b.FEC {
		n += len(g.Repairs)
	}
	if b.Update != nil {
		n++
	}
	if b.Digest != nil {
		n++
	}
	if b.Heartbeat != nil {
		n++
	}
	return n
}

// Each visits every sub-message in canonical order as the bare payload value
// an unbatched sender would have sent. Simulated fabrics use this to apply
// per-message fault draws to a batch's contents. Repair symbols visit as
// flattened fec.Repair values (one per symbol), after the gossips they
// protect and before the membership payloads.
func (b Batch) Each(fn func(payload any)) {
	for _, g := range b.Gossips {
		fn(g)
	}
	for _, gen := range b.FEC {
		for _, rp := range gen.Split() {
			fn(rp)
		}
	}
	if b.Update != nil {
		fn(*b.Update)
	}
	if b.Digest != nil {
		fn(*b.Digest)
	}
	if b.Heartbeat != nil {
		fn(*b.Heartbeat)
	}
}

// Buffer pooling: hot paths (per-round batch encodes, UDP datagram assembly,
// size measurement) borrow scratch buffers instead of allocating per message.

var bufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 2048)
	return &b
}}

// GetBuffer borrows a zero-length scratch buffer from the codec pool.
func GetBuffer() *[]byte { return bufPool.Get().(*[]byte) }

// PutBuffer returns a scratch buffer to the pool, keeping its grown capacity.
func PutBuffer(b *[]byte) {
	*b = (*b)[:0]
	bufPool.Put(b)
}

// Encode frames one protocol message into a fresh buffer. Supported types:
// core.Gossip, membership.Digest, membership.Update, membership.JoinRequest,
// membership.Leave, membership.Heartbeat, Batch. Hot paths should prefer
// AppendMessage with a pooled buffer.
func Encode(msg any) ([]byte, error) {
	return AppendMessage(nil, msg)
}

// AppendMessage appends the frame for one protocol message to b, the
// allocation-free counterpart of Encode.
func AppendMessage(b []byte, msg any) ([]byte, error) {
	switch m := msg.(type) {
	case core.Gossip:
		b = append(b, kindGossip)
		return appendGossipBody(b, m), nil
	case membership.Digest:
		b = append(b, kindDigest)
		return appendDigestBody(b, m), nil
	case membership.Update:
		b = append(b, kindUpdate)
		return appendUpdateBody(b, m), nil
	case membership.JoinRequest:
		b = append(b, kindJoinRequest)
		b = appendRecord(b, m.Joiner)
		return binenc.AppendUvarint(b, uint64(m.Hops)), nil
	case membership.Leave:
		b = append(b, kindLeave)
		b = addr.AppendAddress(b, m.Addr)
		return binenc.AppendUvarint(b, m.Stamp), nil
	case membership.Heartbeat:
		b = append(b, kindHeartbeat)
		b = addr.AppendAddress(b, m.From)
		return binenc.AppendUvarint(b, uint64(m.Sent)), nil
	case Batch:
		return AppendBatch(b, m)
	default:
		return nil, fmt.Errorf("%w: %T", ErrUnknownKind, msg)
	}
}

// AppendBatch appends a batch frame: flags, the length-prefixed gossip
// sections, the repair-symbol section when the batch is coded, then the
// piggybacked membership payloads flagged present.
func AppendBatch(b []byte, m Batch) ([]byte, error) {
	b = append(b, kindBatch)
	var flags byte
	if len(m.FEC) > 0 {
		flags |= batchHasFEC
	}
	if m.Update != nil {
		flags |= batchHasUpdate
	}
	if m.Digest != nil {
		flags |= batchHasDigest
	}
	if m.Heartbeat != nil {
		flags |= batchHasHeartbeat
	}
	b = append(b, flags)
	b = binenc.AppendUvarint(b, uint64(len(m.Gossips)))
	for _, g := range m.Gossips {
		b = binenc.AppendUvarint(b, uint64(GossipBodySize(g)))
		b = appendGossipBody(b, g)
	}
	if len(m.FEC) > 0 {
		b = appendFECSection(b, m.FEC)
	}
	return appendBatchTail(b, m), nil
}

// appendFECSection appends the repair-symbol section: a generation count,
// then per generation its header (sequence number, code shape, symbol
// length, the source event IDs with their routing metadata in symbol
// order) and the repair symbols present in this envelope.
func appendFECSection(b []byte, gens []fec.Generation) []byte {
	b = binenc.AppendUvarint(b, uint64(len(gens)))
	for _, g := range gens {
		b = binenc.AppendUvarint(b, g.Gen)
		b = binenc.AppendUvarint(b, uint64(g.K))
		b = binenc.AppendUvarint(b, uint64(g.R))
		b = binenc.AppendUvarint(b, uint64(g.SymLen))
		for i, id := range g.IDs {
			b = event.AppendID(b, id)
			m := g.Meta[i]
			b = binenc.AppendUvarint(b, uint64(m.Depth))
			b = binenc.AppendFloat(b, m.Rate)
			b = binenc.AppendUvarint(b, uint64(m.Round))
		}
		b = binenc.AppendUvarint(b, uint64(len(g.Repairs)))
		for _, rs := range g.Repairs {
			b = binenc.AppendUvarint(b, uint64(rs.Index))
			b = append(b, rs.Data...)
		}
	}
	return b
}

// FECSectionSize returns the exact encoded size of the repair-symbol
// section, computed without encoding — the size-walk counterpart of
// appendFECSection used by batch sizing and MTU splitting.
func FECSectionSize(gens []fec.Generation) int {
	n := binenc.UvarintLen(uint64(len(gens)))
	for _, g := range gens {
		n += generationSize(g)
	}
	return n
}

// generationSize is the encoded size of one generation entry within the
// FEC section.
func generationSize(g fec.Generation) int {
	n := binenc.UvarintLen(g.Gen) +
		binenc.UvarintLen(uint64(g.K)) +
		binenc.UvarintLen(uint64(g.R)) +
		binenc.UvarintLen(uint64(g.SymLen)) +
		binenc.UvarintLen(uint64(len(g.Repairs)))
	for i, id := range g.IDs {
		m := g.Meta[i]
		n += event.IDWireSize(id) +
			binenc.UvarintLen(uint64(m.Depth)) +
			8 + // rate, IEEE 754 double
			binenc.UvarintLen(uint64(m.Round))
	}
	for _, rs := range g.Repairs {
		n += binenc.UvarintLen(uint64(rs.Index)) + len(rs.Data)
	}
	return n
}

// readFECSection reads the repair-symbol section. Counts and lengths are
// validated against the remaining frame before any allocation, and symbol
// payloads are copied out of the decoder's scratch buffer.
func readFECSection(r *binenc.Reader) ([]fec.Generation, error) {
	count := r.Count(6)
	if err := r.Err(); err != nil {
		return nil, err
	}
	gens := make([]fec.Generation, 0, count)
	for i := 0; i < count; i++ {
		g := fec.Generation{Gen: r.Uvarint()}
		k := r.Uvarint()
		rr := r.Uvarint()
		symLen := r.Uvarint()
		if err := r.Err(); err != nil {
			return nil, err
		}
		if k < 1 || rr < 1 || k+rr > fec.MaxSymbols {
			return nil, fmt.Errorf("%w: FEC generation shape k=%d r=%d", ErrBadPayload, k, rr)
		}
		g.K, g.R, g.SymLen = int(k), int(rr), int(symLen)
		g.IDs = make([]event.ID, g.K)
		g.Meta = make([]fec.Meta, g.K)
		for j := range g.IDs {
			g.IDs[j] = event.ReadID(r)
			g.Meta[j] = fec.Meta{
				Depth: int(r.Uvarint()),
				Rate:  r.Float(),
				Round: int(r.Uvarint()),
			}
		}
		reps := r.Count(1)
		if err := r.Err(); err != nil {
			return nil, err
		}
		if reps > int(rr) {
			return nil, fmt.Errorf("%w: %d repairs for an r=%d generation", ErrBadPayload, reps, rr)
		}
		g.Repairs = make([]fec.RepairSymbol, 0, reps)
		var seen [fec.MaxSymbols]bool
		for j := 0; j < reps; j++ {
			idx := r.Uvarint()
			if r.Err() == nil && (idx >= rr || seen[idx]) {
				return nil, fmt.Errorf("%w: FEC repair index %d out of range or repeated", ErrBadPayload, idx)
			}
			if r.Err() == nil && uint64(r.Len()) < symLen {
				return nil, fmt.Errorf("%w: FEC symbol overruns frame", ErrBadPayload)
			}
			seen[idx] = true
			g.Repairs = append(g.Repairs, fec.RepairSymbol{Index: int(idx), Data: r.Raw(int(symLen))})
		}
		if err := r.Err(); err != nil {
			return nil, err
		}
		gens = append(gens, g)
	}
	return gens, nil
}

// appendBatchTail appends the piggybacked membership bodies in flag order —
// shared by the encoder and the size walk so they cannot drift apart.
func appendBatchTail(b []byte, m Batch) []byte {
	if m.Update != nil {
		b = appendUpdateBody(b, *m.Update)
	}
	if m.Digest != nil {
		b = appendDigestBody(b, *m.Digest)
	}
	if m.Heartbeat != nil {
		b = addr.AppendAddress(b, m.Heartbeat.From)
		b = binenc.AppendUvarint(b, uint64(m.Heartbeat.Sent))
	}
	return b
}

// GossipBodySize returns the exact encoded size of one gossip body (the
// length prefixed by batch framing), computed without encoding.
func GossipBodySize(g core.Gossip) int {
	return event.WireSize(g.Event) +
		binenc.UvarintLen(uint64(g.Depth)) +
		8 + // rate, IEEE 754 double
		binenc.UvarintLen(uint64(g.Round))
}

// EncodedSize returns the framed size of a message in bytes without
// retaining an allocation — the measurement hook behind the soak reports'
// bytes/event. Gossip sections are size-walked (no encoding); the rarer
// membership payloads are sized by encoding into a pooled scratch buffer.
// Unknown types size to zero.
func EncodedSize(msg any) int {
	switch m := msg.(type) {
	case core.Gossip:
		return 1 + GossipBodySize(m)
	case Batch:
		n := 2 + binenc.UvarintLen(uint64(len(m.Gossips))) // kind + flags + count
		for _, g := range m.Gossips {
			s := GossipBodySize(g)
			n += binenc.UvarintLen(uint64(s)) + s
		}
		if len(m.FEC) > 0 {
			n += FECSectionSize(m.FEC)
		}
		if m.Update != nil || m.Digest != nil || m.Heartbeat != nil {
			p := GetBuffer()
			b := appendBatchTail(*p, m)
			n += len(b)
			*p = b[:0]
			PutBuffer(p)
		}
		return n
	default:
		p := GetBuffer()
		defer PutBuffer(p)
		enc, err := AppendMessage(*p, msg)
		if err != nil {
			return 0
		}
		*p = enc[:0]
		return len(enc)
	}
}

// SplitBatch partitions a batch into sub-batches whose encoded frames each
// fit within limit bytes — the datagram MTU seam of the UDP fabric. The
// piggybacked membership payloads ride the first sub-batch; gossips fill
// greedily; repair symbols then pack into whatever room the chunks have
// left, spilling into trailing chunks of their own (a generation's header
// repeats in every chunk that carries one of its symbols, and receivers
// key partial generations by sequence number, so the split is invisible to
// reassembly). A batch whose single gossip, single repair symbol, or
// piggybacked payloads alone cannot fit returns ErrOversized.
func SplitBatch(m Batch, limit int) ([]Batch, error) {
	if s := EncodedSize(m); s <= limit {
		return []Batch{m}, nil
	}
	base := m
	base.FEC = nil
	out, err := splitUncoded(base, limit)
	if err != nil {
		return nil, err
	}
	return packRepairs(out, m.FEC, limit)
}

// splitUncoded splits the gossip sections and membership tail (the
// pre-coding batch format) across chunks.
func splitUncoded(m Batch, limit int) ([]Batch, error) {
	if m.Parts() == 0 {
		return nil, nil
	}
	if s := EncodedSize(m); s <= limit {
		return []Batch{m}, nil
	}
	hasTail := m.Update != nil || m.Digest != nil || m.Heartbeat != nil
	tailSize := 0
	if hasTail {
		p := GetBuffer()
		b := appendBatchTail(*p, m)
		tailSize = len(b)
		*p = b[:0]
		PutBuffer(p)
	}
	// chunkSize is the exact encoded size of one sub-batch: kind and flags
	// bytes, the chunk's own gossip-count varint (which grows with the
	// chunk, not the original batch — modeling it any other way is an
	// off-by-one at the 128-gossip boundary), the length-prefixed gossip
	// sections, and the piggyback tail when this chunk carries it.
	chunkSize := func(count, sumNeed int, withTail bool) int {
		n := 2 + binenc.UvarintLen(uint64(count)) + sumNeed
		if withTail {
			n += tailSize
		}
		return n
	}
	if hasTail && chunkSize(0, 0, true) > limit {
		// The piggybacked membership payloads alone bust the budget; no
		// gossip packing can fix that, and emitting an oversized first chunk
		// would break the documented contract.
		return nil, fmt.Errorf("%w: piggybacked payloads need %d bytes against a %d-byte limit",
			ErrOversized, chunkSize(0, 0, true), limit)
	}
	var out []Batch
	cur := Batch{Update: m.Update, Digest: m.Digest, Heartbeat: m.Heartbeat}
	curTail := hasTail
	sumNeed := 0
	for _, g := range m.Gossips {
		gs := GossipBodySize(g)
		need := binenc.UvarintLen(uint64(gs)) + gs
		if chunkSize(1, need, false) > limit {
			return nil, fmt.Errorf("%w: %d bytes against a %d-byte limit",
				ErrOversized, chunkSize(1, need, false), limit)
		}
		if chunkSize(len(cur.Gossips)+1, sumNeed+need, curTail) > limit {
			// cur always has at least one part here: either the tail (first
			// chunk) or the gossip admitted by the standalone check above.
			out = append(out, cur)
			cur, curTail, sumNeed = Batch{}, false, 0
		}
		cur.Gossips = append(cur.Gossips, g)
		sumNeed += need
	}
	if cur.Parts() > 0 {
		out = append(out, cur)
	}
	return out, nil
}

// fecContribution is the FEC section's share of a chunk's encoded size:
// zero when absent (the flag bit is clear and no section is framed).
func fecContribution(gens []fec.Generation) int {
	if len(gens) == 0 {
		return 0
	}
	return FECSectionSize(gens)
}

// addRepair returns gens with one repair symbol added, opening a fresh
// per-chunk generation entry (header copied from g, repairs of its own) on
// first sight so chunks never alias the original batch's symbol slices.
func addRepair(gens []fec.Generation, g fec.Generation, rs fec.RepairSymbol) []fec.Generation {
	for i := range gens {
		if gens[i].Gen == g.Gen {
			gens[i].Repairs = append(gens[i].Repairs, rs)
			return gens
		}
	}
	return append(gens, fec.Generation{
		Gen: g.Gen, K: g.K, R: g.R, SymLen: g.SymLen, IDs: g.IDs, Meta: g.Meta,
		Repairs: []fec.RepairSymbol{rs},
	})
}

// packRepairs distributes every repair symbol across the already-split
// chunks, first-fit in chunk order, growing trailing chunks when nothing
// has room. Chunk sizes are tracked exactly via the same size walk the
// encoder uses, so no chunk can exceed the limit by even one byte.
func packRepairs(out []Batch, gens []fec.Generation, limit int) ([]Batch, error) {
	if len(gens) == 0 {
		return out, nil
	}
	sizes := make([]int, len(out))
	for i, c := range out {
		sizes[i] = EncodedSize(c)
	}
	for _, g := range gens {
		for _, rs := range g.Repairs {
			placed := false
			for c := range out {
				cand := addRepair(append([]fec.Generation(nil), out[c].FEC...), g, rs)
				newSize := sizes[c] - fecContribution(out[c].FEC) + fecContribution(cand)
				if newSize <= limit {
					out[c].FEC = cand
					sizes[c] = newSize
					placed = true
					break
				}
			}
			if placed {
				continue
			}
			nb := Batch{FEC: addRepair(nil, g, rs)}
			ns := EncodedSize(nb)
			if ns > limit {
				return nil, fmt.Errorf("%w: repair symbol needs %d bytes against a %d-byte limit",
					ErrOversized, ns, limit)
			}
			out = append(out, nb)
			sizes = append(sizes, ns)
		}
	}
	return out, nil
}

// Decoder unframes messages with decoder-scratch reuse: repeated strings
// (event origins, attribute names, membership keys) are interned across
// frames, so steady-state decoding allocates only per-event storage. A
// Decoder is not safe for concurrent use; give each receive loop its own.
type Decoder struct {
	intern *binenc.Interner
	r      binenc.Reader
}

// NewDecoder returns a decoder with a fresh intern table.
func NewDecoder() *Decoder {
	return &Decoder{intern: binenc.NewInterner()}
}

// Decode unframes one message, reusing the decoder's scratch state.
func (d *Decoder) Decode(data []byte) (any, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("%w: empty frame", ErrBadPayload)
	}
	d.r.Reset(data[1:])
	d.r.SetIntern(d.intern)
	return decodeFrom(&d.r, data[0])
}

// Decode unframes a message encoded by Encode.
func Decode(data []byte) (any, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("%w: empty frame", ErrBadPayload)
	}
	r := binenc.NewReader(data[1:])
	return decodeFrom(r, data[0])
}

// decodeFrom dispatches on the kind byte with the payload reader positioned
// at the body.
func decodeFrom(r *binenc.Reader, kind byte) (any, error) {
	switch kind {
	case kindGossip:
		g := readGossipBody(r)
		return g, finish(r)
	case kindDigest:
		d := readDigestBody(r)
		return d, finish(r)
	case kindUpdate:
		u := readUpdateBody(r)
		return u, finish(r)
	case kindJoinRequest:
		jr := membership.JoinRequest{
			Joiner: readRecord(r),
		}
		jr.Hops = int(r.Uvarint())
		return jr, finish(r)
	case kindLeave:
		l := membership.Leave{
			Addr:  addr.ReadAddress(r),
			Stamp: r.Uvarint(),
		}
		return l, finish(r)
	case kindHeartbeat:
		hb := membership.Heartbeat{From: addr.ReadAddress(r)}
		hb.Sent = uint32(r.Uvarint())
		return hb, finish(r)
	case kindBatch:
		b, err := readBatchBody(r)
		if err != nil {
			return nil, err
		}
		return b, finish(r)
	default:
		return nil, fmt.Errorf("%w: kind %d", ErrUnknownKind, kind)
	}
}

func readBatchBody(r *binenc.Reader) (Batch, error) {
	flags := r.Byte()
	if flags&^batchFlagMask != 0 {
		return Batch{}, fmt.Errorf("%w: unknown batch flags %#x", ErrBadPayload, flags)
	}
	n := r.Count(2)
	var b Batch
	if n > 0 {
		b.Gossips = make([]core.Gossip, 0, n)
	}
	for i := 0; i < n; i++ {
		size := r.Uvarint()
		before := r.Len()
		if uint64(before) < size {
			return Batch{}, fmt.Errorf("%w: gossip section overruns frame", ErrBadPayload)
		}
		g := readGossipBody(r)
		if err := r.Err(); err != nil {
			return Batch{}, fmt.Errorf("%w: %v", ErrBadPayload, err)
		}
		if consumed := before - r.Len(); uint64(consumed) != size {
			return Batch{}, fmt.Errorf("%w: gossip section length %d, consumed %d", ErrBadPayload, size, consumed)
		}
		b.Gossips = append(b.Gossips, g)
	}
	if flags&batchHasFEC != 0 {
		gens, err := readFECSection(r)
		if err != nil {
			return Batch{}, fmt.Errorf("%w: %v", ErrBadPayload, err)
		}
		b.FEC = gens
	}
	if flags&batchHasUpdate != 0 {
		u := readUpdateBody(r)
		b.Update = &u
	}
	if flags&batchHasDigest != 0 {
		d := readDigestBody(r)
		b.Digest = &d
	}
	if flags&batchHasHeartbeat != 0 {
		hb := membership.Heartbeat{From: addr.ReadAddress(r)}
		hb.Sent = uint32(r.Uvarint())
		b.Heartbeat = &hb
	}
	return b, nil
}

func appendGossipBody(b []byte, g core.Gossip) []byte {
	b = event.AppendEvent(b, g.Event)
	b = binenc.AppendUvarint(b, uint64(g.Depth))
	b = binenc.AppendFloat(b, g.Rate)
	return binenc.AppendUvarint(b, uint64(g.Round))
}

// AppendEventBody appends one event's canonical bytes without frame kind
// or length prefix — the symbol payload of the coding layer, which codes
// events exactly as gossip sections carry them. Event bytes are invariant
// across retransmissions (the per-round gossip metadata rides the
// generation header instead), which is what lets a repair emitted rounds
// later still match the copies a receiver cached.
func AppendEventBody(b []byte, ev event.Event) []byte {
	return event.AppendEvent(b, ev)
}

// DecodeEventBody decodes one bare event body as written by
// AppendEventBody — the inverse the coding layer applies to recovered
// symbols. The whole slice must be consumed.
func DecodeEventBody(data []byte) (event.Event, error) {
	r := binenc.NewReader(data)
	ev := event.ReadEvent(r)
	if err := finish(r); err != nil {
		return event.Event{}, err
	}
	return ev, nil
}

func readGossipBody(r *binenc.Reader) core.Gossip {
	return core.Gossip{
		Event: event.ReadEvent(r),
		Depth: int(r.Uvarint()),
		Rate:  r.Float(),
		Round: int(r.Uvarint()),
	}
}

func appendDigestBody(b []byte, m membership.Digest) []byte {
	b = addr.AppendAddress(b, m.From)
	b = binenc.AppendUvarint(b, m.Hash)
	b = binenc.AppendUvarint(b, uint64(m.Count))
	b = binenc.AppendUvarint(b, uint64(m.Sent))
	b = binenc.AppendUvarint(b, uint64(len(m.Entries)))
	for _, e := range m.Entries {
		b = binenc.AppendString(b, e.Key)
		b = binenc.AppendUvarint(b, e.Stamp)
		b = binenc.AppendBool(b, e.Alive)
	}
	return b
}

func readDigestBody(r *binenc.Reader) membership.Digest {
	d := membership.Digest{From: addr.ReadAddress(r)}
	d.Hash = r.Uvarint()
	d.Count = int(r.Uvarint())
	d.Sent = uint32(r.Uvarint())
	n := r.Count(2)
	if n > 0 {
		d.Entries = make([]membership.DigestEntry, 0, n)
	}
	for i := 0; i < n; i++ {
		d.Entries = append(d.Entries, membership.DigestEntry{
			Key:   r.String(),
			Stamp: r.Uvarint(),
			Alive: r.Bool(),
		})
	}
	return d
}

func appendUpdateBody(b []byte, m membership.Update) []byte {
	b = addr.AppendAddress(b, m.From)
	b = binenc.AppendUvarint(b, uint64(len(m.Records)))
	for _, rec := range m.Records {
		b = appendRecord(b, rec)
	}
	return b
}

func readUpdateBody(r *binenc.Reader) membership.Update {
	u := membership.Update{From: addr.ReadAddress(r)}
	n := r.Count(3)
	u.Records = make([]membership.Record, 0, n)
	for i := 0; i < n; i++ {
		u.Records = append(u.Records, readRecord(r))
	}
	return u
}

func appendRecord(b []byte, rec membership.Record) []byte {
	b = addr.AppendAddress(b, rec.Addr)
	b = interest.AppendSubscription(b, rec.Sub)
	b = binenc.AppendUvarint(b, rec.Stamp)
	return binenc.AppendBool(b, rec.Alive)
}

func readRecord(r *binenc.Reader) membership.Record {
	return membership.Record{
		Addr:  addr.ReadAddress(r),
		Sub:   interest.ReadSubscription(r),
		Stamp: r.Uvarint(),
		Alive: r.Bool(),
	}
}

func finish(r *binenc.Reader) error {
	if err := r.Err(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadPayload, err)
	}
	if r.Len() != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadPayload, r.Len())
	}
	return nil
}
