// Package wire frames pmcast protocol messages into a compact binary format
// so the runtime can run over a real byte-oriented transport (UDP/TCP). The
// in-memory transport passes Go values directly; this codec is the seam a
// production deployment plugs a socket into.
//
// Frame format: one kind byte followed by the message payload. All integers
// are varints, floats IEEE 754 little-endian, collections length-prefixed
// (package binenc).
package wire

import (
	"errors"
	"fmt"

	"pmcast/internal/addr"
	"pmcast/internal/binenc"
	"pmcast/internal/core"
	"pmcast/internal/event"
	"pmcast/internal/interest"
	"pmcast/internal/membership"
)

// Decoding errors.
var (
	ErrUnknownKind = errors.New("wire: unknown message kind")
	ErrBadPayload  = errors.New("wire: malformed payload")
)

// Message kinds start at 1 so a zero byte is detectably invalid.
const (
	kindGossip byte = iota + 1
	kindDigest
	kindUpdate
	kindJoinRequest
	kindLeave
	kindHeartbeat
)

// Encode frames one protocol message. Supported types: core.Gossip,
// membership.Digest, membership.Update, membership.JoinRequest,
// membership.Leave, membership.Heartbeat.
func Encode(msg any) ([]byte, error) {
	switch m := msg.(type) {
	case core.Gossip:
		b := []byte{kindGossip}
		b = event.AppendEvent(b, m.Event)
		b = binenc.AppendUvarint(b, uint64(m.Depth))
		b = binenc.AppendFloat(b, m.Rate)
		b = binenc.AppendUvarint(b, uint64(m.Round))
		return b, nil
	case membership.Digest:
		b := []byte{kindDigest}
		b = addr.AppendAddress(b, m.From)
		b = binenc.AppendUvarint(b, m.Hash)
		b = binenc.AppendUvarint(b, uint64(m.Count))
		b = binenc.AppendUvarint(b, uint64(len(m.Entries)))
		for _, e := range m.Entries {
			b = binenc.AppendString(b, e.Key)
			b = binenc.AppendUvarint(b, e.Stamp)
			b = binenc.AppendBool(b, e.Alive)
		}
		return b, nil
	case membership.Update:
		b := []byte{kindUpdate}
		b = addr.AppendAddress(b, m.From)
		b = binenc.AppendUvarint(b, uint64(len(m.Records)))
		for _, rec := range m.Records {
			b = appendRecord(b, rec)
		}
		return b, nil
	case membership.JoinRequest:
		b := []byte{kindJoinRequest}
		b = appendRecord(b, m.Joiner)
		b = binenc.AppendUvarint(b, uint64(m.Hops))
		return b, nil
	case membership.Leave:
		b := []byte{kindLeave}
		b = addr.AppendAddress(b, m.Addr)
		b = binenc.AppendUvarint(b, m.Stamp)
		return b, nil
	case membership.Heartbeat:
		b := []byte{kindHeartbeat}
		return addr.AppendAddress(b, m.From), nil
	default:
		return nil, fmt.Errorf("%w: %T", ErrUnknownKind, msg)
	}
}

// Decode unframes a message encoded by Encode.
func Decode(data []byte) (any, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("%w: empty frame", ErrBadPayload)
	}
	r := binenc.NewReader(data[1:])
	switch data[0] {
	case kindGossip:
		g := core.Gossip{
			Event: event.ReadEvent(r),
			Depth: int(r.Uvarint()),
			Rate:  r.Float(),
			Round: int(r.Uvarint()),
		}
		return g, finish(r)
	case kindDigest:
		d := membership.Digest{From: addr.ReadAddress(r)}
		d.Hash = r.Uvarint()
		d.Count = int(r.Uvarint())
		n := r.Count(2)
		if n > 0 {
			d.Entries = make([]membership.DigestEntry, 0, n)
		}
		for i := 0; i < n; i++ {
			d.Entries = append(d.Entries, membership.DigestEntry{
				Key:   r.String(),
				Stamp: r.Uvarint(),
				Alive: r.Bool(),
			})
		}
		return d, finish(r)
	case kindUpdate:
		u := membership.Update{From: addr.ReadAddress(r)}
		n := r.Count(3)
		u.Records = make([]membership.Record, 0, n)
		for i := 0; i < n; i++ {
			u.Records = append(u.Records, readRecord(r))
		}
		return u, finish(r)
	case kindJoinRequest:
		jr := membership.JoinRequest{
			Joiner: readRecord(r),
		}
		jr.Hops = int(r.Uvarint())
		return jr, finish(r)
	case kindLeave:
		l := membership.Leave{
			Addr:  addr.ReadAddress(r),
			Stamp: r.Uvarint(),
		}
		return l, finish(r)
	case kindHeartbeat:
		hb := membership.Heartbeat{From: addr.ReadAddress(r)}
		return hb, finish(r)
	default:
		return nil, fmt.Errorf("%w: kind %d", ErrUnknownKind, data[0])
	}
}

func appendRecord(b []byte, rec membership.Record) []byte {
	b = addr.AppendAddress(b, rec.Addr)
	b = interest.AppendSubscription(b, rec.Sub)
	b = binenc.AppendUvarint(b, rec.Stamp)
	return binenc.AppendBool(b, rec.Alive)
}

func readRecord(r *binenc.Reader) membership.Record {
	return membership.Record{
		Addr:  addr.ReadAddress(r),
		Sub:   interest.ReadSubscription(r),
		Stamp: r.Uvarint(),
		Alive: r.Bool(),
	}
}

func finish(r *binenc.Reader) error {
	if err := r.Err(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadPayload, err)
	}
	if r.Len() != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadPayload, r.Len())
	}
	return nil
}
