// Package wire frames pmcast protocol messages into a compact binary format
// so the runtime can run over a real byte-oriented transport (UDP/TCP). The
// in-memory transport passes Go values directly; this codec is the seam a
// production deployment plugs a socket into.
//
// Frame format: one kind byte followed by the message payload. All integers
// are varints, floats IEEE 754 little-endian, collections length-prefixed
// (package binenc).
//
// The Batch frame is the round envelope of the batched gossip pipeline: every
// gossip a sender owes one peer in one round, each in a length-prefixed
// section, plus piggybacked membership payloads (update, digest, heartbeat)
// that would otherwise each cost their own envelope. Encoders are
// append-style so hot paths reuse buffers (GetBuffer/PutBuffer); the Decoder
// type interns repeated strings so steady-state decoding stays within one
// allocation per event.
package wire

import (
	"errors"
	"fmt"
	"sync"

	"pmcast/internal/addr"
	"pmcast/internal/binenc"
	"pmcast/internal/core"
	"pmcast/internal/event"
	"pmcast/internal/interest"
	"pmcast/internal/membership"
)

// Decoding errors.
var (
	ErrUnknownKind = errors.New("wire: unknown message kind")
	ErrBadPayload  = errors.New("wire: malformed payload")
	ErrOversized   = errors.New("wire: gossip exceeds the datagram budget")
)

// Message kinds start at 1 so a zero byte is detectably invalid.
const (
	kindGossip byte = iota + 1
	kindDigest
	kindUpdate
	kindJoinRequest
	kindLeave
	kindHeartbeat
	kindBatch
)

// Batch flag bits (presence of piggybacked sections).
const (
	batchHasUpdate    byte = 1 << 0
	batchHasDigest    byte = 1 << 1
	batchHasHeartbeat byte = 1 << 2
	batchFlagMask          = batchHasUpdate | batchHasDigest | batchHasHeartbeat
)

// Batch is one per-peer round envelope: the multi-event gossip section plus
// any membership payloads piggybacked onto the same round. The canonical
// sub-message order — gossips, update, digest, heartbeat — matches the order
// an unbatched sender would emit the same messages on one link, which is what
// makes batching a pure envelope-level aggregation (see the equivalence
// property test in internal/harness).
type Batch struct {
	Gossips   []core.Gossip
	Update    *membership.Update
	Digest    *membership.Digest
	Heartbeat *membership.Heartbeat
}

// Parts returns the number of sub-messages carried.
func (b Batch) Parts() int {
	n := len(b.Gossips)
	if b.Update != nil {
		n++
	}
	if b.Digest != nil {
		n++
	}
	if b.Heartbeat != nil {
		n++
	}
	return n
}

// Each visits every sub-message in canonical order as the bare payload value
// an unbatched sender would have sent. Simulated fabrics use this to apply
// per-message fault draws to a batch's contents.
func (b Batch) Each(fn func(payload any)) {
	for _, g := range b.Gossips {
		fn(g)
	}
	if b.Update != nil {
		fn(*b.Update)
	}
	if b.Digest != nil {
		fn(*b.Digest)
	}
	if b.Heartbeat != nil {
		fn(*b.Heartbeat)
	}
}

// Buffer pooling: hot paths (per-round batch encodes, UDP datagram assembly,
// size measurement) borrow scratch buffers instead of allocating per message.

var bufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 2048)
	return &b
}}

// GetBuffer borrows a zero-length scratch buffer from the codec pool.
func GetBuffer() *[]byte { return bufPool.Get().(*[]byte) }

// PutBuffer returns a scratch buffer to the pool, keeping its grown capacity.
func PutBuffer(b *[]byte) {
	*b = (*b)[:0]
	bufPool.Put(b)
}

// Encode frames one protocol message into a fresh buffer. Supported types:
// core.Gossip, membership.Digest, membership.Update, membership.JoinRequest,
// membership.Leave, membership.Heartbeat, Batch. Hot paths should prefer
// AppendMessage with a pooled buffer.
func Encode(msg any) ([]byte, error) {
	return AppendMessage(nil, msg)
}

// AppendMessage appends the frame for one protocol message to b, the
// allocation-free counterpart of Encode.
func AppendMessage(b []byte, msg any) ([]byte, error) {
	switch m := msg.(type) {
	case core.Gossip:
		b = append(b, kindGossip)
		return appendGossipBody(b, m), nil
	case membership.Digest:
		b = append(b, kindDigest)
		return appendDigestBody(b, m), nil
	case membership.Update:
		b = append(b, kindUpdate)
		return appendUpdateBody(b, m), nil
	case membership.JoinRequest:
		b = append(b, kindJoinRequest)
		b = appendRecord(b, m.Joiner)
		return binenc.AppendUvarint(b, uint64(m.Hops)), nil
	case membership.Leave:
		b = append(b, kindLeave)
		b = addr.AppendAddress(b, m.Addr)
		return binenc.AppendUvarint(b, m.Stamp), nil
	case membership.Heartbeat:
		b = append(b, kindHeartbeat)
		return addr.AppendAddress(b, m.From), nil
	case Batch:
		return AppendBatch(b, m)
	default:
		return nil, fmt.Errorf("%w: %T", ErrUnknownKind, msg)
	}
}

// AppendBatch appends a batch frame: flags, the length-prefixed gossip
// sections, then the piggybacked membership payloads flagged present.
func AppendBatch(b []byte, m Batch) ([]byte, error) {
	b = append(b, kindBatch)
	var flags byte
	if m.Update != nil {
		flags |= batchHasUpdate
	}
	if m.Digest != nil {
		flags |= batchHasDigest
	}
	if m.Heartbeat != nil {
		flags |= batchHasHeartbeat
	}
	b = append(b, flags)
	b = binenc.AppendUvarint(b, uint64(len(m.Gossips)))
	for _, g := range m.Gossips {
		b = binenc.AppendUvarint(b, uint64(GossipBodySize(g)))
		b = appendGossipBody(b, g)
	}
	return appendBatchTail(b, m), nil
}

// appendBatchTail appends the piggybacked membership bodies in flag order —
// shared by the encoder and the size walk so they cannot drift apart.
func appendBatchTail(b []byte, m Batch) []byte {
	if m.Update != nil {
		b = appendUpdateBody(b, *m.Update)
	}
	if m.Digest != nil {
		b = appendDigestBody(b, *m.Digest)
	}
	if m.Heartbeat != nil {
		b = addr.AppendAddress(b, m.Heartbeat.From)
	}
	return b
}

// GossipBodySize returns the exact encoded size of one gossip body (the
// length prefixed by batch framing), computed without encoding.
func GossipBodySize(g core.Gossip) int {
	return event.WireSize(g.Event) +
		binenc.UvarintLen(uint64(g.Depth)) +
		8 + // rate, IEEE 754 double
		binenc.UvarintLen(uint64(g.Round))
}

// EncodedSize returns the framed size of a message in bytes without
// retaining an allocation — the measurement hook behind the soak reports'
// bytes/event. Gossip sections are size-walked (no encoding); the rarer
// membership payloads are sized by encoding into a pooled scratch buffer.
// Unknown types size to zero.
func EncodedSize(msg any) int {
	switch m := msg.(type) {
	case core.Gossip:
		return 1 + GossipBodySize(m)
	case Batch:
		n := 2 + binenc.UvarintLen(uint64(len(m.Gossips))) // kind + flags + count
		for _, g := range m.Gossips {
			s := GossipBodySize(g)
			n += binenc.UvarintLen(uint64(s)) + s
		}
		if m.Update != nil || m.Digest != nil || m.Heartbeat != nil {
			p := GetBuffer()
			b := appendBatchTail(*p, m)
			n += len(b)
			*p = b[:0]
			PutBuffer(p)
		}
		return n
	default:
		p := GetBuffer()
		defer PutBuffer(p)
		enc, err := AppendMessage(*p, msg)
		if err != nil {
			return 0
		}
		*p = enc[:0]
		return len(enc)
	}
}

// SplitBatch partitions a batch into sub-batches whose encoded frames each
// fit within limit bytes — the datagram MTU seam of the UDP fabric. The
// piggybacked membership payloads ride the first sub-batch; gossips fill
// greedily. A batch whose single gossip (or whose piggybacked payloads
// alone) cannot fit returns ErrOversized.
func SplitBatch(m Batch, limit int) ([]Batch, error) {
	if s := EncodedSize(m); s <= limit {
		return []Batch{m}, nil
	}
	hasTail := m.Update != nil || m.Digest != nil || m.Heartbeat != nil
	tailSize := 0
	if hasTail {
		p := GetBuffer()
		b := appendBatchTail(*p, m)
		tailSize = len(b)
		*p = b[:0]
		PutBuffer(p)
	}
	// chunkSize is the exact encoded size of one sub-batch: kind and flags
	// bytes, the chunk's own gossip-count varint (which grows with the
	// chunk, not the original batch — modeling it any other way is an
	// off-by-one at the 128-gossip boundary), the length-prefixed gossip
	// sections, and the piggyback tail when this chunk carries it.
	chunkSize := func(count, sumNeed int, withTail bool) int {
		n := 2 + binenc.UvarintLen(uint64(count)) + sumNeed
		if withTail {
			n += tailSize
		}
		return n
	}
	if hasTail && chunkSize(0, 0, true) > limit {
		// The piggybacked membership payloads alone bust the budget; no
		// gossip packing can fix that, and emitting an oversized first chunk
		// would break the documented contract.
		return nil, fmt.Errorf("%w: piggybacked payloads need %d bytes against a %d-byte limit",
			ErrOversized, chunkSize(0, 0, true), limit)
	}
	var out []Batch
	cur := Batch{Update: m.Update, Digest: m.Digest, Heartbeat: m.Heartbeat}
	curTail := hasTail
	sumNeed := 0
	for _, g := range m.Gossips {
		gs := GossipBodySize(g)
		need := binenc.UvarintLen(uint64(gs)) + gs
		if chunkSize(1, need, false) > limit {
			return nil, fmt.Errorf("%w: %d bytes against a %d-byte limit",
				ErrOversized, chunkSize(1, need, false), limit)
		}
		if chunkSize(len(cur.Gossips)+1, sumNeed+need, curTail) > limit {
			// cur always has at least one part here: either the tail (first
			// chunk) or the gossip admitted by the standalone check above.
			out = append(out, cur)
			cur, curTail, sumNeed = Batch{}, false, 0
		}
		cur.Gossips = append(cur.Gossips, g)
		sumNeed += need
	}
	if cur.Parts() > 0 {
		out = append(out, cur)
	}
	return out, nil
}

// Decoder unframes messages with decoder-scratch reuse: repeated strings
// (event origins, attribute names, membership keys) are interned across
// frames, so steady-state decoding allocates only per-event storage. A
// Decoder is not safe for concurrent use; give each receive loop its own.
type Decoder struct {
	intern *binenc.Interner
	r      binenc.Reader
}

// NewDecoder returns a decoder with a fresh intern table.
func NewDecoder() *Decoder {
	return &Decoder{intern: binenc.NewInterner()}
}

// Decode unframes one message, reusing the decoder's scratch state.
func (d *Decoder) Decode(data []byte) (any, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("%w: empty frame", ErrBadPayload)
	}
	d.r.Reset(data[1:])
	d.r.SetIntern(d.intern)
	return decodeFrom(&d.r, data[0])
}

// Decode unframes a message encoded by Encode.
func Decode(data []byte) (any, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("%w: empty frame", ErrBadPayload)
	}
	r := binenc.NewReader(data[1:])
	return decodeFrom(r, data[0])
}

// decodeFrom dispatches on the kind byte with the payload reader positioned
// at the body.
func decodeFrom(r *binenc.Reader, kind byte) (any, error) {
	switch kind {
	case kindGossip:
		g := readGossipBody(r)
		return g, finish(r)
	case kindDigest:
		d := readDigestBody(r)
		return d, finish(r)
	case kindUpdate:
		u := readUpdateBody(r)
		return u, finish(r)
	case kindJoinRequest:
		jr := membership.JoinRequest{
			Joiner: readRecord(r),
		}
		jr.Hops = int(r.Uvarint())
		return jr, finish(r)
	case kindLeave:
		l := membership.Leave{
			Addr:  addr.ReadAddress(r),
			Stamp: r.Uvarint(),
		}
		return l, finish(r)
	case kindHeartbeat:
		hb := membership.Heartbeat{From: addr.ReadAddress(r)}
		return hb, finish(r)
	case kindBatch:
		b, err := readBatchBody(r)
		if err != nil {
			return nil, err
		}
		return b, finish(r)
	default:
		return nil, fmt.Errorf("%w: kind %d", ErrUnknownKind, kind)
	}
}

func readBatchBody(r *binenc.Reader) (Batch, error) {
	flags := r.Byte()
	if flags&^batchFlagMask != 0 {
		return Batch{}, fmt.Errorf("%w: unknown batch flags %#x", ErrBadPayload, flags)
	}
	n := r.Count(2)
	var b Batch
	if n > 0 {
		b.Gossips = make([]core.Gossip, 0, n)
	}
	for i := 0; i < n; i++ {
		size := r.Uvarint()
		before := r.Len()
		if uint64(before) < size {
			return Batch{}, fmt.Errorf("%w: gossip section overruns frame", ErrBadPayload)
		}
		g := readGossipBody(r)
		if err := r.Err(); err != nil {
			return Batch{}, fmt.Errorf("%w: %v", ErrBadPayload, err)
		}
		if consumed := before - r.Len(); uint64(consumed) != size {
			return Batch{}, fmt.Errorf("%w: gossip section length %d, consumed %d", ErrBadPayload, size, consumed)
		}
		b.Gossips = append(b.Gossips, g)
	}
	if flags&batchHasUpdate != 0 {
		u := readUpdateBody(r)
		b.Update = &u
	}
	if flags&batchHasDigest != 0 {
		d := readDigestBody(r)
		b.Digest = &d
	}
	if flags&batchHasHeartbeat != 0 {
		hb := membership.Heartbeat{From: addr.ReadAddress(r)}
		b.Heartbeat = &hb
	}
	return b, nil
}

func appendGossipBody(b []byte, g core.Gossip) []byte {
	b = event.AppendEvent(b, g.Event)
	b = binenc.AppendUvarint(b, uint64(g.Depth))
	b = binenc.AppendFloat(b, g.Rate)
	return binenc.AppendUvarint(b, uint64(g.Round))
}

func readGossipBody(r *binenc.Reader) core.Gossip {
	return core.Gossip{
		Event: event.ReadEvent(r),
		Depth: int(r.Uvarint()),
		Rate:  r.Float(),
		Round: int(r.Uvarint()),
	}
}

func appendDigestBody(b []byte, m membership.Digest) []byte {
	b = addr.AppendAddress(b, m.From)
	b = binenc.AppendUvarint(b, m.Hash)
	b = binenc.AppendUvarint(b, uint64(m.Count))
	b = binenc.AppendUvarint(b, uint64(len(m.Entries)))
	for _, e := range m.Entries {
		b = binenc.AppendString(b, e.Key)
		b = binenc.AppendUvarint(b, e.Stamp)
		b = binenc.AppendBool(b, e.Alive)
	}
	return b
}

func readDigestBody(r *binenc.Reader) membership.Digest {
	d := membership.Digest{From: addr.ReadAddress(r)}
	d.Hash = r.Uvarint()
	d.Count = int(r.Uvarint())
	n := r.Count(2)
	if n > 0 {
		d.Entries = make([]membership.DigestEntry, 0, n)
	}
	for i := 0; i < n; i++ {
		d.Entries = append(d.Entries, membership.DigestEntry{
			Key:   r.String(),
			Stamp: r.Uvarint(),
			Alive: r.Bool(),
		})
	}
	return d
}

func appendUpdateBody(b []byte, m membership.Update) []byte {
	b = addr.AppendAddress(b, m.From)
	b = binenc.AppendUvarint(b, uint64(len(m.Records)))
	for _, rec := range m.Records {
		b = appendRecord(b, rec)
	}
	return b
}

func readUpdateBody(r *binenc.Reader) membership.Update {
	u := membership.Update{From: addr.ReadAddress(r)}
	n := r.Count(3)
	u.Records = make([]membership.Record, 0, n)
	for i := 0; i < n; i++ {
		u.Records = append(u.Records, readRecord(r))
	}
	return u
}

func appendRecord(b []byte, rec membership.Record) []byte {
	b = addr.AppendAddress(b, rec.Addr)
	b = interest.AppendSubscription(b, rec.Sub)
	b = binenc.AppendUvarint(b, rec.Stamp)
	return binenc.AppendBool(b, rec.Alive)
}

func readRecord(r *binenc.Reader) membership.Record {
	return membership.Record{
		Addr:  addr.ReadAddress(r),
		Sub:   interest.ReadSubscription(r),
		Stamp: r.Uvarint(),
		Alive: r.Bool(),
	}
}

func finish(r *binenc.Reader) error {
	if err := r.Err(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadPayload, err)
	}
	if r.Len() != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadPayload, r.Len())
	}
	return nil
}
