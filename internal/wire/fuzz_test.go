// Native fuzz targets for the wire codec. The seed corpus is captured from
// real traffic: a small step-mode fleet runs the live join/gossip/anti-
// entropy protocol over the in-memory fabric with a tap, and every routed
// payload — batched round envelopes included — is encoded into a seed
// frame. The fuzz properties are the codec's two contracts: arbitrary bytes
// never panic, and whatever decodes re-encodes to a stable canonical byte
// string (encode→decode→encode identity).
package wire_test

import (
	"bytes"
	"testing"

	"pmcast/internal/addr"
	"pmcast/internal/clock"
	"pmcast/internal/core"
	"pmcast/internal/event"
	"pmcast/internal/interest"
	"pmcast/internal/membership"
	"pmcast/internal/node"
	"pmcast/internal/transport"
	"pmcast/internal/wire"
)

// captureCorpus runs a deterministic 8-node step-mode fleet and returns the
// encoded form of every distinct payload shape the fabric routed, capped to
// keep the seed corpus small.
func captureCorpus(tb testing.TB) [][]byte {
	tb.Helper()
	var frames [][]byte
	seen := make(map[string]bool)
	vc := clock.NewVirtual()
	fab := transport.MustNetwork(transport.Config{
		Clock: vc,
		Tap: func(from, to addr.Address, payload any) {
			data, err := wire.Encode(payload)
			if err != nil || len(frames) >= 64 {
				return
			}
			// Dedup by frame bytes so the corpus spans shapes, not repeats.
			if !seen[string(data)] {
				seen[string(data)] = true
				frames = append(frames, data)
			}
		},
	})
	defer fab.Close()

	space := addr.MustRegular(4, 2)
	nodes := make([]*node.Node, 0, 8)
	for i := 0; i < 8; i++ {
		n, err := node.New(fab, node.Config{
			Addr:  space.AddressAt(i),
			Space: space,
			R:     2, F: 3, C: 3,
			Subscription: interest.NewSubscription().
				Where("b", interest.EqInt(int64(i%2))),
			Clock: vc,
			Seed:  int64(i + 1),
		})
		if err != nil {
			tb.Fatal(err)
		}
		defer n.Stop()
		nodes = append(nodes, n)
	}
	pump := func() {
		for moved := true; moved; {
			moved = false
			for _, n := range nodes {
				if n.PumpInbox() > 0 {
					moved = true
				}
			}
		}
	}
	for _, n := range nodes[1:] {
		if err := n.Join(nodes[0].Addr()); err != nil {
			tb.Fatal(err)
		}
	}
	pump()
	for round := 0; round < 20; round++ {
		if round == 8 {
			for k, n := range []*node.Node{nodes[0], nodes[3]} {
				_, err := n.Publish(map[string]event.Value{
					"b": event.Int(int64(k)),
					"c": event.Float(1.5),
					"e": event.Str("soak"),
				})
				if err != nil {
					tb.Fatal(err)
				}
			}
		}
		for _, n := range nodes {
			n.TickMembership()
		}
		pump()
		for _, n := range nodes {
			n.TickGossip()
		}
		pump()
	}
	if len(frames) == 0 {
		tb.Fatal("mini-fleet routed no traffic — corpus capture broken")
	}
	return frames
}

// reencode asserts the canonical-form contract on one decoded message.
func reencode(t *testing.T, msg any) []byte {
	t.Helper()
	enc1, err := wire.Encode(msg)
	if err != nil {
		t.Fatalf("decoded %T fails to re-encode: %v", msg, err)
	}
	msg2, err := wire.Decode(enc1)
	if err != nil {
		t.Fatalf("canonical encoding of %T fails to decode: %v", msg, err)
	}
	enc2, err := wire.Encode(msg2)
	if err != nil {
		t.Fatalf("re-decoded %T fails to re-encode: %v", msg, err)
	}
	if !bytes.Equal(enc1, enc2) {
		t.Fatalf("encode→decode→encode differs for %T:\n%x\n%x", msg, enc1, enc2)
	}
	return enc1
}

// FuzzWireRoundTrip feeds arbitrary bytes to the frame decoder: it must
// never panic, and every frame it accepts must re-encode canonically and
// decode identically through the interning Decoder.
func FuzzWireRoundTrip(f *testing.F) {
	for _, frame := range captureCorpus(f) {
		f.Add(frame)
	}
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0xff, 0xff, 0xff})
	dec := wire.NewDecoder()
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := wire.Decode(data)
		if err != nil {
			return // malformed input is fine; panics are not
		}
		enc1 := reencode(t, msg)
		// The interning decoder must agree with the plain one byte-for-byte
		// after re-encoding (interning changes allocations, not values).
		msg3, err := dec.Decode(data)
		if err != nil {
			t.Fatalf("Decoder rejects a frame Decode accepted: %v", err)
		}
		enc3, err := wire.Encode(msg3)
		if err != nil {
			t.Fatalf("Decoder result fails to encode: %v", err)
		}
		if !bytes.Equal(enc1, enc3) {
			t.Fatalf("interned decode diverges:\n%x\n%x", enc1, enc3)
		}
	})
}

// FuzzCompiledMatchParity holds the compiled matching engine to its oracle
// under adversarial inputs: arbitrary byte pairs decode into a subscription
// and an event (through the same codecs the wire path uses), and whatever
// decodes must match identically through the interpretive path and the
// compiled one — as a bare subscription, as a regrouped summary, and as an
// interned compiled form. The seed corpus is the wire fuzz corpus: every
// event the captured mini-fleet gossiped (extracted from its frames) paired
// with every subscription shape the fleet used, plus the summaries its
// membership traffic carried.
func FuzzCompiledMatchParity(f *testing.F) {
	var evSeeds [][]byte
	var subSeeds [][]byte
	addEvent := func(ev event.Event) {
		if data, err := ev.MarshalBinary(); err == nil {
			evSeeds = append(evSeeds, data)
		}
	}
	collect := func(msg any) {
		switch m := msg.(type) {
		case core.Gossip:
			addEvent(m.Event)
		case wire.Batch:
			for _, g := range m.Gossips {
				addEvent(g.Event)
			}
			if m.Update != nil {
				for _, rec := range m.Update.Records {
					if data, err := rec.Sub.MarshalBinary(); err == nil {
						subSeeds = append(subSeeds, data)
					}
				}
			}
		case membership.Update:
			for _, rec := range m.Records {
				if data, err := rec.Sub.MarshalBinary(); err == nil {
					subSeeds = append(subSeeds, data)
				}
			}
		}
	}
	for _, frame := range captureCorpus(f) {
		if msg, err := wire.Decode(frame); err == nil {
			collect(msg)
		}
	}
	// Always-present seeds so the pairing fuzzes even if capture shapes
	// drift: a multi-criterion subscription and a multi-attribute event.
	richSub := interest.NewSubscription().
		Where("b", interest.EqInt(2)).
		Where("c", interest.Between(10, 220)).
		Where("e", interest.OneOf("Bob", "Tom"))
	if data, err := richSub.MarshalBinary(); err == nil {
		subSeeds = append(subSeeds, data)
	}
	richEv := event.NewBuilder().Int("b", 2).Float("c", 155.5).Str("e", "Bob").Build(event.ID{Origin: "seed", Seq: 1})
	if data, err := richEv.MarshalBinary(); err == nil {
		evSeeds = append(evSeeds, data)
	}
	if len(subSeeds) == 0 || len(evSeeds) == 0 {
		f.Fatal("corpus capture yielded no subscription/event seeds")
	}
	for _, sb := range subSeeds {
		for _, eb := range evSeeds {
			f.Add(sb, eb)
		}
	}
	f.Fuzz(func(t *testing.T, subBytes, evBytes []byte) {
		var sub interest.Subscription
		if err := sub.UnmarshalBinary(subBytes); err != nil {
			return // malformed subscription: nothing to compare
		}
		var ev event.Event
		if err := ev.UnmarshalBinary(evBytes); err != nil {
			return
		}
		want := sub.Matches(ev)
		if got := interest.Compile(sub).Matches(ev); got != want {
			t.Fatalf("compiled subscription diverges: compiled=%v naive=%v\nsub: %s\nevent: %s", got, want, sub, ev)
		}
		sum := interest.Summarize(sub)
		sumWant := sum.Matches(ev)
		if got := interest.CompileSummary(sum).Matches(ev); got != sumWant {
			t.Fatalf("compiled summary diverges: compiled=%v naive=%v\nsummary: %s\nevent: %s", got, sumWant, sum, ev)
		}
		if got := interest.NewCompiler().CompileSummary(sum).Matches(ev); got != sumWant {
			t.Fatalf("interned summary diverges: compiled=%v naive=%v", got, sumWant)
		}
	})
}

// FuzzBatchDecode drives arbitrary bytes through the batch frame path
// specifically: the length-prefixed gossip sections and piggyback flags are
// the newest parsing surface, so the fuzzer is pointed straight at them.
func FuzzBatchDecode(f *testing.F) {
	for _, frame := range captureCorpus(f) {
		if len(frame) > 1 {
			f.Add(frame[1:]) // bodies of every captured kind, re-headed below
		}
	}
	f.Add([]byte{0x00, 0x00})
	f.Add([]byte{0x07, 0x01, 0x05})
	kindByte, err := wire.Encode(wire.Batch{})
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		frame := make([]byte, 0, len(data)+1)
		frame = append(frame, kindByte[0])
		frame = append(frame, data...)
		msg, err := wire.Decode(frame)
		if err != nil {
			return
		}
		b, ok := msg.(wire.Batch)
		if !ok {
			t.Fatalf("batch frame decoded to %T", msg)
		}
		reencode(t, b)
		// Splitting whatever decoded must preserve the gossip sequence.
		chunks, err := wire.SplitBatch(b, 1<<16)
		if err != nil {
			return // oversized single gossips are a legal refusal
		}
		total := 0
		for _, c := range chunks {
			total += len(c.Gossips)
		}
		if total != len(b.Gossips) {
			t.Fatalf("split lost gossips: %d of %d", total, len(b.Gossips))
		}
	})
}
