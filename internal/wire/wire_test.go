package wire

import (
	"math"
	"math/rand"
	"testing"

	"pmcast/internal/addr"
	"pmcast/internal/core"
	"pmcast/internal/event"
	"pmcast/internal/interest"
	"pmcast/internal/membership"
)

func sampleEvent() event.Event {
	return event.NewBuilder().
		Int("b", -42).
		Float("c", 155.6).
		Str("e", "Bob").
		Bool("urgent", true).
		Build(event.ID{Origin: "128.178.73.3", Seq: 77})
}

func sampleSub() interest.Subscription {
	return interest.NewSubscription().
		Where("b", interest.EqInt(2)).
		Where("c", interest.Between(10, 220)).
		Where("e", interest.OneOf("Bob", "Tom")).
		Where("u", interest.IsBool(false))
}

func roundTrip(t *testing.T, msg any) any {
	t.Helper()
	data, err := Encode(msg)
	if err != nil {
		t.Fatalf("encode %T: %v", msg, err)
	}
	out, err := Decode(data)
	if err != nil {
		t.Fatalf("decode %T: %v", msg, err)
	}
	return out
}

func TestGossipRoundTrip(t *testing.T) {
	in := core.Gossip{Event: sampleEvent(), Depth: 3, Rate: 0.4375, Round: 7}
	out := roundTrip(t, in).(core.Gossip)
	if out.Depth != in.Depth || out.Rate != in.Rate || out.Round != in.Round {
		t.Errorf("metadata mismatch: %+v", out)
	}
	if out.Event.ID() != in.Event.ID() {
		t.Errorf("id = %v", out.Event.ID())
	}
	for _, name := range in.Event.Names() {
		if !out.Event.Attr(name).Equal(in.Event.Attr(name)) {
			t.Errorf("attr %s = %v, want %v", name, out.Event.Attr(name), in.Event.Attr(name))
		}
	}
}

func TestDigestRoundTrip(t *testing.T) {
	in := membership.Digest{
		From: addr.New(1, 2, 3),
		Sent: math.MaxUint32,
		Entries: []membership.DigestEntry{
			{Key: "0.0.1", Stamp: 5},
			{Key: "2.9.1", Stamp: math.MaxUint64},
		},
	}
	out := roundTrip(t, in).(membership.Digest)
	if !out.From.Equal(in.From) || len(out.Entries) != 2 {
		t.Fatalf("digest = %+v", out)
	}
	if out.Sent != in.Sent {
		t.Errorf("sent beacon = %d, want %d", out.Sent, in.Sent)
	}
	for i := range in.Entries {
		if out.Entries[i] != in.Entries[i] {
			t.Errorf("entry %d = %+v", i, out.Entries[i])
		}
	}
}

func TestUpdateRoundTrip(t *testing.T) {
	in := membership.Update{
		From: addr.New(0, 1),
		Records: []membership.Record{
			{Addr: addr.New(1, 1), Sub: sampleSub(), Stamp: 9, Alive: true},
			{Addr: addr.New(2, 2), Sub: interest.NewSubscription(), Stamp: 3, Alive: false},
		},
	}
	out := roundTrip(t, in).(membership.Update)
	if len(out.Records) != 2 {
		t.Fatalf("records = %d", len(out.Records))
	}
	r0 := out.Records[0]
	if !r0.Addr.Equal(addr.New(1, 1)) || r0.Stamp != 9 || !r0.Alive {
		t.Errorf("record 0 = %+v", r0)
	}
	if !r0.Sub.Equal(sampleSub()) {
		t.Errorf("subscription = %v, want %v", r0.Sub, sampleSub())
	}
	if out.Records[1].Alive || !out.Records[1].Sub.IsMatchAll() {
		t.Errorf("record 1 = %+v", out.Records[1])
	}
}

func TestJoinAndLeaveRoundTrip(t *testing.T) {
	jr := membership.JoinRequest{
		Joiner: membership.Record{Addr: addr.New(3, 1), Sub: sampleSub(), Stamp: 1, Alive: true},
		Hops:   4,
	}
	out := roundTrip(t, jr).(membership.JoinRequest)
	if out.Hops != 4 || !out.Joiner.Addr.Equal(addr.New(3, 1)) || !out.Joiner.Sub.Equal(sampleSub()) {
		t.Errorf("join = %+v", out)
	}
	lv := membership.Leave{Addr: addr.New(3, 1), Stamp: 12}
	if got := roundTrip(t, lv).(membership.Leave); !got.Addr.Equal(lv.Addr) || got.Stamp != lv.Stamp {
		t.Errorf("leave = %+v", got)
	}
}

func TestSubscriptionSemanticsPreserved(t *testing.T) {
	// Round-tripped subscriptions must match exactly the same events.
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		sub := interest.NewSubscription()
		if rng.Intn(2) == 0 {
			lo := float64(rng.Intn(50))
			sub = sub.Where("b", interest.Between(lo, lo+float64(rng.Intn(30))))
		}
		if rng.Intn(2) == 0 {
			sub = sub.Where("e", interest.OneOf("x", "y", "z"))
		}
		if rng.Intn(2) == 0 {
			sub = sub.Where("z", interest.Le(float64(rng.Intn(100))))
		}
		u := membership.Update{Records: []membership.Record{{Addr: addr.New(0), Sub: sub, Stamp: 1, Alive: true}}}
		got := roundTrip(t, u).(membership.Update).Records[0].Sub
		for probe := 0; probe < 50; probe++ {
			names := []string{"x", "y", "z", "w"}
			ev := event.NewBuilder().
				Float("b", float64(rng.Intn(100))).
				Str("e", names[rng.Intn(4)]).
				Float("z", float64(rng.Intn(120))).
				Build(event.ID{Origin: "p", Seq: 1})
			if sub.Matches(ev) != got.Matches(ev) {
				t.Fatalf("semantics changed: %v vs %v on %v", sub, got, ev)
			}
		}
	}
}

func TestSummaryBinaryRoundTrip(t *testing.T) {
	sum := interest.Summarize(
		interest.NewSubscription().Where("b", interest.Gt(3)),
		interest.NewSubscription().Where("e", interest.OneOf("Tom")),
	)
	data, err := sum.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got interest.Summary
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	evHit := event.NewBuilder().Float("b", 4).Build(event.ID{Origin: "p", Seq: 1})
	evMiss := event.NewBuilder().Float("b", 1).Str("e", "Ann").Build(event.ID{Origin: "p", Seq: 2})
	if !got.Matches(evHit) || got.Matches(evMiss) {
		t.Errorf("summary semantics lost: %v", &got)
	}
}

func TestAddressBinaryRoundTrip(t *testing.T) {
	in := addr.New(128, 178, 73, 3)
	data, err := in.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var out addr.Address
	if err := out.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !out.Equal(in) {
		t.Errorf("address = %v", out)
	}
}

func TestEventBinaryRoundTrip(t *testing.T) {
	in := sampleEvent()
	data, err := in.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var out event.Event
	if err := out.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if out.ID() != in.ID() || out.Len() != in.Len() {
		t.Fatalf("event = %v", out)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Error("empty frame accepted")
	}
	if _, err := Decode([]byte{99}); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := Decode([]byte{kindGossip, 0xff}); err == nil {
		t.Error("truncated gossip accepted")
	}
	if _, err := Encode("not a message"); err == nil {
		t.Error("foreign type accepted")
	}
	// Trailing bytes rejected.
	good, err := Encode(membership.Leave{Addr: addr.New(1), Stamp: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(append(good, 0x00)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestDecodeFuzzLikeCorruption(t *testing.T) {
	// Random mutations of valid frames must never panic; errors are fine.
	msgs := []any{
		core.Gossip{Event: sampleEvent(), Depth: 2, Rate: 0.5, Round: 3},
		membership.Digest{From: addr.New(1, 2), Entries: []membership.DigestEntry{{Key: "a", Stamp: 1}}},
		membership.Update{From: addr.New(1, 2), Records: []membership.Record{{Addr: addr.New(0, 0), Sub: sampleSub(), Stamp: 2, Alive: true}}},
	}
	rng := rand.New(rand.NewSource(7))
	for _, msg := range msgs {
		data, err := Encode(msg)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 500; trial++ {
			mut := make([]byte, len(data))
			copy(mut, data)
			for k := 0; k <= rng.Intn(3); k++ {
				mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
			}
			if rng.Intn(4) == 0 && len(mut) > 2 {
				mut = mut[:rng.Intn(len(mut))]
			}
			_, _ = Decode(mut) // must not panic
		}
	}
}
