package wire

import (
	"bytes"
	"fmt"
	"testing"

	"pmcast/internal/addr"
	"pmcast/internal/core"
	"pmcast/internal/event"
	"pmcast/internal/membership"
)

func sampleGossip(seq uint64) core.Gossip {
	return core.Gossip{
		Event: event.NewBuilder().Int("b", int64(seq%4)).
			Build(event.ID{Origin: "0.1.2", Seq: seq}),
		Depth: 2,
		Rate:  0.25,
		Round: int(seq % 5),
	}
}

func sampleBatch(events int) Batch {
	b := Batch{}
	for i := 0; i < events; i++ {
		b.Gossips = append(b.Gossips, sampleGossip(uint64(i+1)))
	}
	return b
}

func fullBatch() Batch {
	b := sampleBatch(3)
	b.Update = &membership.Update{
		From: addr.New(0, 1),
		Records: []membership.Record{
			{Addr: addr.New(1, 1), Sub: sampleSub(), Stamp: 9, Alive: true},
		},
	}
	b.Digest = &membership.Digest{
		From:  addr.New(0, 1),
		Hash:  12345,
		Count: 7,
		Sent:  901,
	}
	b.Heartbeat = &membership.Heartbeat{From: addr.New(0, 1), Sent: 333}
	return b
}

func TestBatchRoundTrip(t *testing.T) {
	in := fullBatch()
	out := roundTrip(t, in).(Batch)
	if len(out.Gossips) != len(in.Gossips) {
		t.Fatalf("gossips = %d, want %d", len(out.Gossips), len(in.Gossips))
	}
	for i := range in.Gossips {
		if out.Gossips[i].Event.ID() != in.Gossips[i].Event.ID() ||
			out.Gossips[i].Depth != in.Gossips[i].Depth ||
			out.Gossips[i].Rate != in.Gossips[i].Rate ||
			out.Gossips[i].Round != in.Gossips[i].Round {
			t.Errorf("gossip %d = %+v, want %+v", i, out.Gossips[i], in.Gossips[i])
		}
	}
	if out.Update == nil || len(out.Update.Records) != 1 || !out.Update.Records[0].Sub.Equal(sampleSub()) {
		t.Errorf("update = %+v", out.Update)
	}
	if out.Digest == nil || out.Digest.Hash != 12345 || out.Digest.Count != 7 || out.Digest.Sent != 901 {
		t.Errorf("digest = %+v", out.Digest)
	}
	if out.Heartbeat == nil || !out.Heartbeat.From.Equal(addr.New(0, 1)) || out.Heartbeat.Sent != 333 {
		t.Errorf("heartbeat = %+v", out.Heartbeat)
	}
	if got, want := in.Parts(), 6; got != want {
		t.Errorf("parts = %d, want %d", got, want)
	}
}

func TestBatchGossipsOnlyRoundTrip(t *testing.T) {
	out := roundTrip(t, sampleBatch(5)).(Batch)
	if len(out.Gossips) != 5 || out.Update != nil || out.Digest != nil || out.Heartbeat != nil {
		t.Errorf("batch = %+v", out)
	}
}

func TestBatchEachVisitsCanonicalOrder(t *testing.T) {
	b := fullBatch()
	var kinds []string
	b.Each(func(payload any) {
		kinds = append(kinds, fmt.Sprintf("%T", payload))
	})
	want := []string{
		"core.Gossip", "core.Gossip", "core.Gossip",
		"membership.Update", "membership.Digest", "membership.Heartbeat",
	}
	if len(kinds) != len(want) {
		t.Fatalf("parts = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("part %d = %s, want %s", i, kinds[i], want[i])
		}
	}
}

func TestEncodedSizeMatchesEncoding(t *testing.T) {
	msgs := []any{
		sampleGossip(3),
		fullBatch(),
		sampleBatch(10),
		membership.Heartbeat{From: addr.New(2, 2)},
		membership.Leave{Addr: addr.New(1), Stamp: 4},
	}
	for _, msg := range msgs {
		enc, err := Encode(msg)
		if err != nil {
			t.Fatal(err)
		}
		if got := EncodedSize(msg); got != len(enc) {
			t.Errorf("EncodedSize(%T) = %d, encoded %d bytes", msg, got, len(enc))
		}
	}
}

func TestSplitBatchRespectsLimit(t *testing.T) {
	in := fullBatch()
	for i := 0; i < 40; i++ {
		in.Gossips = append(in.Gossips, sampleGossip(uint64(100+i)))
	}
	whole, err := Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	limit := len(whole) / 4
	chunks, err := SplitBatch(in, limit)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) < 4 {
		t.Fatalf("split into %d chunks under a quarter-size limit", len(chunks))
	}
	var reassembled []core.Gossip
	for i, c := range chunks {
		enc, err := Encode(c)
		if err != nil {
			t.Fatal(err)
		}
		if len(enc) > limit {
			t.Errorf("chunk %d encodes to %d bytes, above the %d limit", i, len(enc), limit)
		}
		if i == 0 {
			if c.Update == nil || c.Digest == nil || c.Heartbeat == nil {
				t.Error("piggybacked payloads must ride the first chunk")
			}
		} else if c.Update != nil || c.Digest != nil || c.Heartbeat != nil {
			t.Errorf("chunk %d repeats piggybacked payloads", i)
		}
		reassembled = append(reassembled, c.Gossips...)
	}
	if len(reassembled) != len(in.Gossips) {
		t.Fatalf("reassembled %d gossips, want %d", len(reassembled), len(in.Gossips))
	}
	for i := range in.Gossips {
		if reassembled[i].Event.ID() != in.Gossips[i].Event.ID() {
			t.Fatalf("gossip %d out of order after split", i)
		}
	}
}

func TestSplitBatchFitsInOne(t *testing.T) {
	in := sampleBatch(2)
	chunks, err := SplitBatch(in, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 1 || len(chunks[0].Gossips) != 2 {
		t.Errorf("chunks = %+v", chunks)
	}
}

// TestSplitBatchExactBudgets sweeps limits across a large batch — including
// the 128-gossip boundary where a chunk's count varint grows to two bytes —
// and demands that every produced chunk encodes within the limit, that
// nothing is lost or reordered, and that a refusal only happens when some
// chunk genuinely cannot fit.
func TestSplitBatchExactBudgets(t *testing.T) {
	in := fullBatch()
	in.Gossips = in.Gossips[:0]
	for i := 0; i < 200; i++ {
		in.Gossips = append(in.Gossips, sampleGossip(uint64(i+1)))
	}
	total, err := Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	// minViable: the piggyback tail chunk and the largest standalone-gossip
	// chunk must both fit for a split to be possible.
	minViable := 0
	for _, g := range in.Gossips {
		gs := GossipBodySize(g)
		if s := 3 + gs + 1; s > minViable { // kind+flags+count(1) + prefix(1)+body
			minViable = s
		}
	}
	if s := EncodedSize(Batch{Update: in.Update, Digest: in.Digest, Heartbeat: in.Heartbeat}); s > minViable {
		minViable = s
	}
	for limit := minViable - 10; limit <= len(total)+10; limit += 3 {
		chunks, err := SplitBatch(in, limit)
		if err != nil {
			if limit >= minViable {
				t.Fatalf("limit %d (≥ viable %d) refused: %v", limit, minViable, err)
			}
			continue
		}
		got := 0
		for i, c := range chunks {
			enc, err := Encode(c)
			if err != nil {
				t.Fatal(err)
			}
			if len(enc) > limit {
				t.Fatalf("limit %d: chunk %d (%d gossips) encodes to %d bytes",
					limit, i, len(c.Gossips), len(enc))
			}
			for _, g := range c.Gossips {
				if want := in.Gossips[got].Event.ID(); g.Event.ID() != want {
					t.Fatalf("limit %d: gossip %d out of order", limit, got)
				}
				got++
			}
		}
		if got != len(in.Gossips) {
			t.Fatalf("limit %d: %d of %d gossips survived the split", limit, got, len(in.Gossips))
		}
	}
}

func TestSplitBatchOversizedPiggyback(t *testing.T) {
	// Piggybacked payloads that alone exceed the limit must be a refusal,
	// never an oversized first chunk.
	recs := make([]membership.Record, 100)
	for i := range recs {
		recs[i] = membership.Record{Addr: addr.New(i, i), Sub: sampleSub(), Stamp: uint64(i), Alive: true}
	}
	b := Batch{
		Gossips: []core.Gossip{sampleGossip(1)},
		Update:  &membership.Update{From: addr.New(0), Records: recs},
	}
	chunks, err := SplitBatch(b, 300)
	if err == nil {
		for i, c := range chunks {
			if enc, encErr := Encode(c); encErr == nil && len(enc) > 300 {
				t.Fatalf("chunk %d is %d bytes, above the 300-byte limit, and no error was returned", i, len(enc))
			}
		}
		t.Fatal("oversized piggyback split without error")
	}
}

func TestSplitBatchOversizedGossip(t *testing.T) {
	big := core.Gossip{
		Event: event.NewBuilder().Str("payload", string(make([]byte, 4096))).
			Build(event.ID{Origin: "x", Seq: 1}),
	}
	if _, err := SplitBatch(Batch{Gossips: []core.Gossip{big}}, 256); err == nil {
		t.Error("gossip above the limit split without error")
	}
}

func TestBatchDecodeRejectsGarbage(t *testing.T) {
	good, err := Encode(fullBatch())
	if err != nil {
		t.Fatal(err)
	}
	// Unknown flag bits.
	bad := append([]byte(nil), good...)
	bad[1] |= 0x80
	if _, err := Decode(bad); err == nil {
		t.Error("unknown batch flags accepted")
	}
	// Corrupted section length.
	bad = append([]byte(nil), good...)
	bad[2] = 0xff
	if _, err := Decode(bad); err == nil {
		t.Error("corrupt gossip count accepted")
	}
	// Truncation anywhere must error, never panic.
	for cut := 1; cut < len(good); cut++ {
		if _, err := Decode(good[:cut]); err == nil {
			t.Errorf("truncated batch of %d/%d bytes accepted", cut, len(good))
		}
	}
}

// TestBatchEncodeDecodeEncodeIdentity is the canonical-form contract the
// fuzz targets rely on: whatever Decode accepts re-encodes to a stable byte
// string.
func TestBatchEncodeDecodeEncodeIdentity(t *testing.T) {
	enc1, err := Encode(fullBatch())
	if err != nil {
		t.Fatal(err)
	}
	mid, err := Decode(enc1)
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := Encode(mid)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc1, enc2) {
		t.Errorf("encode→decode→encode differs:\n%x\n%x", enc1, enc2)
	}
}

// TestBatchCodecAllocBudget pins the zero-alloc wire path: steady-state
// encoding into a reused buffer allocates nothing, and steady-state decoding
// with an interning Decoder costs at most one allocation per event (the
// event's attribute storage) plus a constant few for the batch itself.
func TestBatchCodecAllocBudget(t *testing.T) {
	const events = 16
	in := sampleBatch(events)

	buf := make([]byte, 0, 64<<10)
	encAllocs := testing.AllocsPerRun(200, func() {
		out, err := AppendBatch(buf[:0], in)
		if err != nil {
			t.Fatal(err)
		}
		buf = out[:0]
	})
	if encAllocs != 0 {
		t.Errorf("batch encode allocates %.1f times per op, want 0", encAllocs)
	}

	data, err := Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder()
	decAllocs := testing.AllocsPerRun(200, func() {
		msg, err := dec.Decode(data)
		if err != nil {
			t.Fatal(err)
		}
		if b := msg.(Batch); len(b.Gossips) != events {
			t.Fatalf("decoded %d gossips", len(b.Gossips))
		}
	})
	// ≤ 1 alloc/event: each event's attribute slice, plus a constant for the
	// gossip slice and the interface boxing of the returned Batch.
	if limit := float64(events) + 4; decAllocs > limit {
		t.Errorf("batch decode allocates %.1f times per op for %d events, want ≤ %.0f",
			decAllocs, events, limit)
	}
}
