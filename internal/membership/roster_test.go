package membership

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"time"

	"pmcast/internal/addr"
	"pmcast/internal/interest"
)

// rosterFixture builds a full 4×4 space roster (16 lines, stamp 1, alive)
// with per-line subscriptions.
func rosterFixture(t *testing.T) (addr.Space, []Record) {
	t.Helper()
	space := addr.MustRegular(4, 2)
	var recs []Record
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			recs = append(recs, Record{
				Addr:  addr.New(i, j),
				Sub:   interest.NewSubscription().Where("b", interest.Gt(float64(i*4+j))),
				Stamp: 1,
				Alive: true,
			})
		}
	}
	return space, recs
}

// servicePair builds the same logical service twice: classically (self line
// seeded, remaining roster lines applied as an update) and through the
// shared roster. Everything observable must match between the two.
func servicePair(t *testing.T, self addr.Address) (*Service, *Service) {
	t.Helper()
	space, recs := rosterFixture(t)
	cfg := Config{Self: self, Space: space, R: 2, SuspectAfter: 10 * time.Second}

	var selfSub interest.Subscription
	var others []Record
	for _, r := range recs {
		if r.Addr.Equal(self) {
			selfSub = r.Sub
		} else {
			others = append(others, r)
		}
	}
	classic, err := New(cfg, selfSub)
	if err != nil {
		t.Fatal(err)
	}
	classic.Apply(Update{Records: others})

	base, err := NewRoster(recs)
	if err != nil {
		t.Fatal(err)
	}
	shared, err := NewWithRoster(cfg, base)
	if err != nil {
		t.Fatal(err)
	}
	return classic, shared
}

// mustAgree compares every externally observable surface of the two
// services, including the exact sequence of random peer draws.
func mustAgree(t *testing.T, classic, shared *Service, rngSeed int64) {
	t.Helper()
	if a, b := classic.RosterHash(), shared.RosterHash(); a != b {
		t.Fatalf("roster hash: classic %x, shared %x", a, b)
	}
	if a, b := classic.Len(), shared.Len(); a != b {
		t.Fatalf("alive len: classic %d, shared %d", a, b)
	}
	if a, b := classic.MakeSummaryDigest().Count, shared.MakeSummaryDigest().Count; a != b {
		t.Fatalf("record count: classic %d, shared %d", a, b)
	}
	if a, b := classic.ImmediateNeighbors(), shared.ImmediateNeighbors(); !reflect.DeepEqual(a, b) {
		t.Fatalf("neighbors: classic %v, shared %v", a, b)
	}
	if a, b := classic.Snapshot(), shared.Snapshot(); !reflect.DeepEqual(a, b) {
		t.Fatalf("snapshot diverged: classic %d members, shared %d", len(a), len(b))
	}
	// Digest entry sets (order is unspecified — compare sorted).
	da, db := classic.MakeDigest(), shared.MakeDigest()
	ea := append([]DigestEntry(nil), da.Entries...)
	eb := append([]DigestEntry(nil), db.Entries...)
	sort.Slice(ea, func(i, j int) bool { return ea[i].Key < ea[j].Key })
	sort.Slice(eb, func(i, j int) bool { return eb[i].Key < eb[j].Key })
	if !reflect.DeepEqual(ea, eb) {
		t.Fatalf("digest entries diverged:\nclassic %v\nshared  %v", ea, eb)
	}
	// Identical rng streams must produce identical draw sequences.
	ra, rb := rand.New(rand.NewSource(rngSeed)), rand.New(rand.NewSource(rngSeed))
	for i := 0; i < 32; i++ {
		ga, gb := classic.GossipTargets(ra, 3), shared.GossipTargets(rb, 3)
		if !reflect.DeepEqual(ga, gb) {
			t.Fatalf("gossip draw %d: classic %v, shared %v", i, ga, gb)
		}
		ta, tb := classic.DigestTargets(ra, 2), shared.DigestTargets(rb, 2)
		if !reflect.DeepEqual(ta, tb) {
			t.Fatalf("digest draw %d: classic %v, shared %v", i, ta, tb)
		}
	}
	// Every record line, looked up by key.
	classic.VisitRecords(func(r Record) {
		got, ok := shared.LookupKey(r.Addr.Key())
		if !ok || !reflect.DeepEqual(got, r) {
			t.Fatalf("record %s: classic %+v, shared %+v (ok=%v)", r.Addr, r, got, ok)
		}
	})
}

// TestRosterModeMatchesClassic drives both backings through the same
// transition sequence — tombstones, resurrections, sweeps, a subscription
// change — and checks full observable equivalence after each step.
func TestRosterModeMatchesClassic(t *testing.T) {
	self := addr.New(1, 2)
	classic, shared := servicePair(t, self)
	mustAgree(t, classic, shared, 7)

	// Tombstone a few peers (one inside the subgroup, some outside).
	for step, victim := range []addr.Address{addr.New(1, 3), addr.New(0, 0), addr.New(3, 1)} {
		l := Leave{Addr: victim, Stamp: 2}
		classic.HandleLeave(l)
		shared.HandleLeave(l)
		mustAgree(t, classic, shared, int64(100+step))
	}

	// Resurrect one with a fresher stamp.
	res := Record{Addr: addr.New(0, 0), Sub: interest.NewSubscription(), Stamp: 3, Alive: true}
	classic.Apply(Update{Records: []Record{res}})
	shared.Apply(Update{Records: []Record{res}})
	mustAgree(t, classic, shared, 11)

	// Self subscription change bumps the overlay self line.
	sub := interest.NewSubscription().Where("x", interest.Gt(9))
	classic.Subscribe(sub)
	shared.Subscribe(sub)
	mustAgree(t, classic, shared, 13)

	// A false tombstone against self triggers self-defense identically.
	tomb := Record{Addr: self, Stamp: 5, Alive: false}
	classic.Apply(Update{Records: []Record{tomb}})
	shared.Apply(Update{Records: []Record{tomb}})
	mustAgree(t, classic, shared, 17)

	// An address outside the roster materializes the shared service; the
	// logical state must still be identical afterwards.
	joiner := Record{Addr: addr.New(2, 2), Sub: interest.NewSubscription(), Stamp: 9, Alive: true}
	// 2.2 is in the roster — use a genuinely divergent line via a stamp-9
	// flip instead, then check HandleDigest symmetry both ways.
	classic.Apply(Update{Records: []Record{joiner}})
	shared.Apply(Update{Records: []Record{joiner}})
	mustAgree(t, classic, shared, 19)

	// Cross-digest: each backing must see the other as identical.
	if upd, fresher := classic.HandleDigest(shared.MakeSummaryDigest()); upd != nil || fresher {
		t.Fatalf("classic sees shared as divergent: upd=%v fresher=%v", upd, fresher)
	}
	if upd, fresher := shared.HandleDigest(classic.MakeSummaryDigest()); upd != nil || fresher {
		t.Fatalf("shared sees classic as divergent: upd=%v fresher=%v", upd, fresher)
	}
}

// TestRosterSweepAndPoolMapping exercises the failure detector and the
// rank-through-exclusion pool mapping with many dead lines.
func TestRosterSweepAndPoolMapping(t *testing.T) {
	now := time.Unix(1000, 0)
	space, recs := rosterFixture(t)
	self := addr.New(1, 2)
	cfg := Config{
		Self: self, Space: space, R: 2,
		SuspectAfter: 5 * time.Second,
		Now:          func() time.Time { return now },
	}
	var selfSub interest.Subscription
	var others []Record
	for _, r := range recs {
		if r.Addr.Equal(self) {
			selfSub = r.Sub
		} else {
			others = append(others, r)
		}
	}
	classic, err := New(cfg, selfSub)
	if err != nil {
		t.Fatal(err)
	}
	classic.Apply(Update{Records: others})
	base, err := NewRoster(recs)
	if err != nil {
		t.Fatal(err)
	}
	shared, err := NewWithRoster(cfg, base)
	if err != nil {
		t.Fatal(err)
	}

	// First sweep grandfathers; advance past the deadline and sweep again —
	// the whole subgroup is expelled identically.
	classic.SweepFailures()
	shared.SweepFailures()
	now = now.Add(6 * time.Second)
	sa, sb := classic.SweepFailures(), shared.SweepFailures()
	if !reflect.DeepEqual(sa, sb) || len(sa) == 0 {
		t.Fatalf("sweep diverged: classic %v, shared %v", sa, sb)
	}
	mustAgree(t, classic, shared, 23)

	// Tombstone most of the fleet so poolGone is dense, then verify the
	// draw sequence still matches the classic cache exactly.
	stamp := uint64(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			a := addr.New(i, j)
			if a.Equal(self) || (i == 3 && j == 3) || (i == 0 && j == 1) {
				continue
			}
			l := Leave{Addr: a, Stamp: stamp}
			classic.HandleLeave(l)
			shared.HandleLeave(l)
		}
	}
	mustAgree(t, classic, shared, 29)
	if got := shared.Len(); got != 3 {
		t.Fatalf("alive len = %d, want 3 (self + 2 survivors)", got)
	}
}

// TestRosterMaterializeOnNewAddress checks the de-COW path: a record for an
// address outside the base flips the service to classic backing with no
// observable discontinuity.
func TestRosterMaterializeOnNewAddress(t *testing.T) {
	space := addr.MustRegular(4, 3) // deeper space: roster covers only a slice
	var recs []Record
	for i := 0; i < 4; i++ {
		recs = append(recs, Record{
			Addr:  addr.New(0, 0, i),
			Sub:   interest.NewSubscription(),
			Stamp: 1,
			Alive: true,
		})
	}
	cfg := Config{Self: addr.New(0, 0, 1), Space: space, R: 2, SuspectAfter: time.Minute}
	base, err := NewRoster(recs)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewWithRoster(cfg, base)
	if err != nil {
		t.Fatal(err)
	}
	classic, err := New(cfg, interest.NewSubscription())
	if err != nil {
		t.Fatal(err)
	}
	classic.Apply(Update{Records: recs})

	joiner := Record{Addr: addr.New(1, 2, 3), Sub: interest.NewSubscription(), Stamp: 1, Alive: true}
	s.Apply(Update{Records: []Record{joiner}})
	classic.Apply(Update{Records: []Record{joiner}})
	if s.base != nil {
		t.Fatal("new address did not materialize the shared service")
	}
	mustAgree(t, classic, s, 31)
}

// TestNewWithRosterRejectsStrangers pins the constructor contract.
func TestNewWithRosterRejectsStrangers(t *testing.T) {
	_, recs := rosterFixture(t)
	base, err := NewRoster(recs)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Self: addr.New(1, 2), Space: addr.MustRegular(4, 3), R: 2}
	// Self of the wrong depth fails space validation before roster lookup.
	if _, err := NewWithRoster(cfg, base); err == nil {
		t.Error("wrong-depth self accepted")
	}
	// Duplicate roster lines are rejected.
	if _, err := NewRoster(append(recs, recs[0])); err == nil {
		t.Error("duplicate roster address accepted")
	}
}
