// Package membership implements pmcast's loosely coordinated membership
// management (paper Section 2.3): timestamped member records exchanged by
// gossip pull, a recursive join protocol bootstrapped through one known
// contact, explicit leaves, and failure detection based on the last contact
// time of immediate neighbors.
//
// The service is a synchronous, thread-safe state machine over protocol
// messages; the runtime node (internal/node) wires it to the transport and
// timers. Records carry per-line timestamps exactly as in the paper: "every
// line in every table has an associated timestamp, representing the last
// time the corresponding line was updated", and a receiver of a digest
// "updates the gossiper for all lines in which the gossiper's timestamps are
// smaller" (gossip pull).
package membership

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"pmcast/internal/addr"
	"pmcast/internal/interest"
	"pmcast/internal/tree"
)

// Errors reported by the service.
var (
	ErrBadConfig = errors.New("membership: invalid configuration")
)

// Record is one membership line: a process, its interests, a logical
// timestamp, and liveness. Dead records are tombstones that must keep
// propagating so removals win over stale copies.
type Record struct {
	Addr  addr.Address
	Sub   interest.Subscription
	Stamp uint64
	Alive bool
}

// DigestEntry summarizes one record for anti-entropy comparison.
type DigestEntry struct {
	Key   string
	Stamp uint64
}

// Digest is the gossip-pull probe: the sender's (line, timestamp) pairs.
type Digest struct {
	From    addr.Address
	Entries []DigestEntry
}

// Update carries full records; sent by a digest receiver for every line in
// which the gossiper was stale (the pull), and as join replies.
type Update struct {
	From    addr.Address
	Records []Record
}

// JoinRequest announces a joiner towards its future immediate neighbors.
type JoinRequest struct {
	Joiner Record
	// Hops bounds forwarding (the recursive contact chain of Section 2.3).
	Hops int
}

// Leave is the explicit departure notification sent to close neighbors.
type Leave struct {
	Addr  addr.Address
	Stamp uint64
}

// Config parameterizes the service.
type Config struct {
	// Self is the owning process.
	Self addr.Address
	// Space bounds the address space (tree depth d and arities).
	Space addr.Space
	// R is the redundancy factor used when snapshotting into a tree.
	R int
	// SuspectAfter is how long an immediate neighbor may stay silent before
	// the failure detector declares it crashed.
	SuspectAfter time.Duration
	// SuspicionSweeps is how many consecutive over-deadline sweeps are
	// required before a silent neighbor is expelled (default 1: expel on
	// first detection). Values > 1 implement the Section 6 suggestion of a
	// confirmation phase before exclusion, trading detection latency for
	// resilience against transient silence.
	SuspicionSweeps int
	// Now tells time (injectable for tests); nil means time.Now.
	Now func() time.Time
}

func (c Config) validate() error {
	if c.Self.IsZero() {
		return fmt.Errorf("%w: zero self address", ErrBadConfig)
	}
	if c.Space.Depth() == 0 {
		return fmt.Errorf("%w: zero space", ErrBadConfig)
	}
	if err := c.Space.Validate(c.Self); err != nil {
		return fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	if c.R < 1 {
		return fmt.Errorf("%w: R=%d", ErrBadConfig, c.R)
	}
	return nil
}

// Service is one process's membership state. All methods are safe for
// concurrent use.
type Service struct {
	cfg Config
	now func() time.Time

	mu        sync.RWMutex
	records   map[string]*Record
	lastHeard map[string]time.Time
	suspicion map[string]int
	version   uint64
}

// New builds a service seeded with the process's own record.
func New(cfg Config, selfSub interest.Subscription) (*Service, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	if cfg.SuspicionSweeps < 1 {
		cfg.SuspicionSweeps = 1
	}
	s := &Service{
		cfg:       cfg,
		now:       now,
		records:   make(map[string]*Record),
		lastHeard: make(map[string]time.Time),
		suspicion: make(map[string]int),
	}
	s.records[cfg.Self.Key()] = &Record{Addr: cfg.Self, Sub: selfSub, Stamp: 1, Alive: true}
	s.version = 1
	return s, nil
}

// Self returns the owning address.
func (s *Service) Self() addr.Address { return s.cfg.Self }

// Version increases on every effective record change; the node rebuilds its
// tree views when it observes a new version.
func (s *Service) Version() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.version
}

// Len returns the number of alive records (including self).
func (s *Service) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, r := range s.records {
		if r.Alive {
			n++
		}
	}
	return n
}

// apply merges one record; the higher stamp wins, tombstones win ties.
// Returns whether state changed. Callers hold s.mu.
func (s *Service) apply(r Record) bool {
	key := r.Addr.Key()
	cur, ok := s.records[key]
	if !ok {
		cp := r
		s.records[key] = &cp
		return true
	}
	if r.Stamp < cur.Stamp {
		return false
	}
	if r.Stamp == cur.Stamp && (cur.Alive == r.Alive) {
		return false
	}
	if r.Stamp == cur.Stamp && cur.Alive && !r.Alive {
		// Tombstone precedence at equal stamps.
		cur.Alive = false
		return true
	}
	if r.Stamp == cur.Stamp {
		return false
	}
	// Self-defense: if someone declares us dead, resurrect with a higher
	// stamp so the correction propagates (we are obviously alive).
	if key == s.cfg.Self.Key() && !r.Alive {
		cur.Stamp = r.Stamp + 1
		cur.Alive = true
		return true
	}
	*cur = r
	return true
}

// Apply merges records from an Update, returning how many changed state.
func (s *Service) Apply(u Update) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	changed := 0
	for _, r := range u.Records {
		if s.apply(r) {
			changed++
		}
	}
	if changed > 0 {
		s.version++
	}
	s.markHeardLocked(u.From)
	return changed
}

// MakeDigest snapshots the service's (line, timestamp) pairs.
func (s *Service) MakeDigest() Digest {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d := Digest{From: s.cfg.Self, Entries: make([]DigestEntry, 0, len(s.records))}
	for key, r := range s.records {
		d.Entries = append(d.Entries, DigestEntry{Key: key, Stamp: r.Stamp})
	}
	sort.Slice(d.Entries, func(i, j int) bool { return d.Entries[i].Key < d.Entries[j].Key })
	return d
}

// HandleDigest implements the pull: it returns an Update carrying every
// record the gossiper lacks or holds with a smaller timestamp. A nil return
// means the gossiper is up to date.
func (s *Service) HandleDigest(d Digest) *Update {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.markHeardLocked(d.From)
	known := make(map[string]uint64, len(d.Entries))
	for _, e := range d.Entries {
		known[e.Key] = e.Stamp
	}
	var fresh []Record
	for key, r := range s.records {
		if stamp, ok := known[key]; !ok || stamp < r.Stamp {
			fresh = append(fresh, *r)
		}
	}
	if len(fresh) == 0 {
		return nil
	}
	sort.Slice(fresh, func(i, j int) bool { return fresh[i].Addr.Less(fresh[j].Addr) })
	return &Update{From: s.cfg.Self, Records: fresh}
}

// GossipTargets picks up to k random alive peers for digest dissemination.
func (s *Service) GossipTargets(rng *rand.Rand, k int) []addr.Address {
	s.mu.RLock()
	defer s.mu.RUnlock()
	peers := s.alivePeersLocked()
	rng.Shuffle(len(peers), func(i, j int) { peers[i], peers[j] = peers[j], peers[i] })
	if k > len(peers) {
		k = len(peers)
	}
	return peers[:k]
}

func (s *Service) alivePeersLocked() []addr.Address {
	peers := make([]addr.Address, 0, len(s.records))
	selfKey := s.cfg.Self.Key()
	keys := make([]string, 0, len(s.records))
	for key := range s.records {
		keys = append(keys, key)
	}
	sort.Strings(keys) // deterministic base order before shuffling
	for _, key := range keys {
		r := s.records[key]
		if r.Alive && key != selfKey {
			peers = append(peers, r.Addr)
		}
	}
	return peers
}

// BuildJoinRequest creates the announcement a joiner sends to its contact.
func (s *Service) BuildJoinRequest() JoinRequest {
	s.mu.RLock()
	defer s.mu.RUnlock()
	self := *s.records[s.cfg.Self.Key()]
	return JoinRequest{Joiner: self, Hops: s.cfg.Space.Depth()}
}

// HandleJoinRequest admits a joiner: the receiver merges the joiner's
// record, replies with its full view (so the joiner bootstraps), and — when
// it knows a process strictly closer to the joiner — returns that address so
// the caller forwards the request one hop further ("this is made
// recursively, until the most immediate delegates of the new process have
// been contacted").
func (s *Service) HandleJoinRequest(jr JoinRequest) (reply Update, forward addr.Address, ok bool) {
	s.mu.Lock()
	changed := s.apply(jr.Joiner)
	if changed {
		s.version++
	}
	s.markHeardLocked(jr.Joiner.Addr)
	records := make([]Record, 0, len(s.records))
	for _, r := range s.records {
		records = append(records, *r)
	}
	selfDepth := s.cfg.Self.CommonPrefixDepth(jr.Joiner.Addr)
	var best addr.Address
	bestDepth := selfDepth
	for _, r := range s.records {
		if !r.Alive || r.Addr.Equal(s.cfg.Self) || r.Addr.Equal(jr.Joiner.Addr) {
			continue
		}
		if d := r.Addr.CommonPrefixDepth(jr.Joiner.Addr); d > bestDepth {
			bestDepth, best = d, r.Addr
		}
	}
	s.mu.Unlock()

	sort.Slice(records, func(i, j int) bool { return records[i].Addr.Less(records[j].Addr) })
	reply = Update{From: s.cfg.Self, Records: records}
	if jr.Hops > 0 && !best.IsZero() {
		return reply, best, true
	}
	return reply, addr.Address{}, false
}

// Subscribe replaces the process's own interests, bumping its line stamp so
// the change propagates.
func (s *Service) Subscribe(sub interest.Subscription) {
	s.mu.Lock()
	defer s.mu.Unlock()
	self := s.records[s.cfg.Self.Key()]
	self.Sub = sub
	self.Stamp++
	s.version++
}

// BuildLeave tombstones the process's own record and returns the
// notification to send to close neighbors.
func (s *Service) BuildLeave() Leave {
	s.mu.Lock()
	defer s.mu.Unlock()
	self := s.records[s.cfg.Self.Key()]
	self.Stamp++
	self.Alive = false
	s.version++
	return Leave{Addr: s.cfg.Self, Stamp: self.Stamp}
}

// HandleLeave applies a departure notification.
func (s *Service) HandleLeave(l Leave) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.apply(Record{Addr: l.Addr, Stamp: l.Stamp, Alive: false}) {
		s.version++
	}
}

// MarkHeard records life signs from a peer (any protocol message counts,
// membership or gossip — "every process keeps track of the last time it was
// contacted").
func (s *Service) MarkHeard(a addr.Address) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.markHeardLocked(a)
}

func (s *Service) markHeardLocked(a addr.Address) {
	if !a.IsZero() {
		s.lastHeard[a.Key()] = s.now()
		delete(s.suspicion, a.Key())
	}
}

// ImmediateNeighbors lists the alive processes sharing the depth-d prefix
// with self — the subgroup whose members monitor each other.
func (s *Service) ImmediateNeighbors() []addr.Address {
	s.mu.RLock()
	defer s.mu.RUnlock()
	prefix := s.cfg.Self.Prefix(s.cfg.Space.Depth())
	var out []addr.Address
	for _, r := range s.records {
		if r.Alive && !r.Addr.Equal(s.cfg.Self) && r.Addr.HasPrefix(prefix) {
			out = append(out, r.Addr)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// SweepFailures tombstones immediate neighbors that have been silent longer
// than SuspectAfter, returning the newly suspected addresses. Neighbors
// never heard from are grandfathered at first sweep (their timer starts
// then), so a fresh join does not immediately expel its group.
func (s *Service) SweepFailures() []addr.Address {
	if s.cfg.SuspectAfter <= 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	prefix := s.cfg.Self.Prefix(s.cfg.Space.Depth())
	var suspected []addr.Address
	for key, r := range s.records {
		if !r.Alive || r.Addr.Equal(s.cfg.Self) || !r.Addr.HasPrefix(prefix) {
			continue
		}
		heard, ok := s.lastHeard[key]
		if !ok {
			s.lastHeard[key] = now
			continue
		}
		if now.Sub(heard) > s.cfg.SuspectAfter {
			s.suspicion[key]++
			if s.suspicion[key] < s.cfg.SuspicionSweeps {
				continue // confirmation phase (Section 6): not yet expelled
			}
			delete(s.suspicion, key)
			r.Stamp++
			r.Alive = false
			s.version++
			suspected = append(suspected, r.Addr)
		}
	}
	sort.Slice(suspected, func(i, j int) bool { return suspected[i].Less(suspected[j]) })
	return suspected
}

// Snapshot materializes the alive records as tree members, ready for
// tree.Build.
func (s *Service) Snapshot() []tree.Member {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]tree.Member, 0, len(s.records))
	for _, r := range s.records {
		if r.Alive {
			out = append(out, tree.Member{Addr: r.Addr, Sub: r.Sub})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr.Less(out[j].Addr) })
	return out
}

// Lookup returns the record for an address.
func (s *Service) Lookup(a addr.Address) (Record, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.records[a.Key()]
	if !ok {
		return Record{}, false
	}
	return *r, true
}
