// Package membership implements pmcast's loosely coordinated membership
// management (paper Section 2.3): timestamped member records exchanged by
// gossip pull, a recursive join protocol bootstrapped through one known
// contact, explicit leaves, and failure detection based on the last contact
// time of immediate neighbors.
//
// The service is a synchronous, thread-safe state machine over protocol
// messages; the runtime node (internal/node) wires it to the transport and
// timers. Records carry per-line timestamps exactly as in the paper: "every
// line in every table has an associated timestamp, representing the last
// time the corresponding line was updated", and a receiver of a digest
// "updates the gossiper for all lines in which the gossiper's timestamps are
// smaller" (gossip pull).
package membership

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"pmcast/internal/addr"
	"pmcast/internal/interest"
	"pmcast/internal/tree"
)

// Errors reported by the service.
var (
	ErrBadConfig = errors.New("membership: invalid configuration")
)

// Record is one membership line: a process, its interests, a logical
// timestamp, and liveness. Dead records are tombstones that must keep
// propagating so removals win over stale copies.
type Record struct {
	Addr  addr.Address
	Sub   interest.Subscription
	Stamp uint64
	Alive bool
}

// DigestEntry summarizes one record for anti-entropy comparison. Liveness
// rides along because stamps alone cannot express equal-stamp tombstone
// precedence: two peers holding (k, alive) and (k, dead) for the same line
// would otherwise disagree forever — visibly so, since the roster hash
// covers liveness and every probe between them would escalate to a full
// digest that transfers nothing.
type DigestEntry struct {
	Key   string
	Stamp uint64
	Alive bool
}

// Digest is the gossip-pull probe. Hash and Count summarize the sender's
// whole roster (incrementally maintained, order-independent); a digest
// without Entries is a summary probe — the steady-state form, costing O(1)
// to build and compare. Converged peers exchange only probes; a mismatch
// escalates to full (line, timestamp) digests via the push-pull reply, so
// the O(n) roster walk is paid exactly when states actually diverge.
type Digest struct {
	From    addr.Address
	Hash    uint64
	Count   int
	// Sent is the loss-estimator beacon: the cumulative number of protocol
	// sub-messages the sender has addressed to this digest's destination.
	// The receiver compares it against what actually arrived to estimate
	// the link's loss rate — piggybacked here because digests already flow
	// on every link the estimator cares about. Zero when estimation is off.
	Sent    uint32
	Entries []DigestEntry
}

// Update carries full records; sent by a digest receiver for every line in
// which the gossiper was stale (the pull), and as join replies.
type Update struct {
	From    addr.Address
	Records []Record
}

// JoinRequest announces a joiner towards its future immediate neighbors.
type JoinRequest struct {
	Joiner Record
	// Hops bounds forwarding (the recursive contact chain of Section 2.3).
	Hops int
}

// Leave is the explicit departure notification sent to close neighbors.
type Leave struct {
	Addr  addr.Address
	Stamp uint64
}

// Heartbeat is the subgroup liveness beacon: a contentless "I am alive"
// sent to every immediate neighbor each membership interval. The paper's
// failure detector is subgroup-local ("every process keeps track of the
// last time it was contacted" by its immediate neighbors); at fleet scale,
// digest fan-out alone cannot keep those contact times fresh — the expected
// silence gap of uniform fan-out grows with n — so the beacon carries the
// detector while digests carry anti-entropy. Any received message refreshes
// the contact time; the heartbeat merely guarantees a bounded refresh rate.
type Heartbeat struct {
	From addr.Address
	// Sent is the same cumulative loss-estimator beacon a Digest carries
	// (Digest.Sent): heartbeats reach the subgroup peers digests may skip.
	Sent uint32
}

// Config parameterizes the service.
type Config struct {
	// Self is the owning process.
	Self addr.Address
	// Space bounds the address space (tree depth d and arities).
	Space addr.Space
	// R is the redundancy factor used when snapshotting into a tree.
	R int
	// SuspectAfter is how long an immediate neighbor may stay silent before
	// the failure detector declares it crashed.
	SuspectAfter time.Duration
	// SuspicionSweeps is how many consecutive over-deadline sweeps are
	// required before a silent neighbor is expelled (default 1: expel on
	// first detection). Values > 1 implement the Section 6 suggestion of a
	// confirmation phase before exclusion, trading detection latency for
	// resilience against transient silence.
	SuspicionSweeps int
	// Now tells time (injectable for tests); nil means time.Now.
	Now func() time.Time
}

func (c Config) validate() error {
	if c.Self.IsZero() {
		return fmt.Errorf("%w: zero self address", ErrBadConfig)
	}
	if c.Space.Depth() == 0 {
		return fmt.Errorf("%w: zero space", ErrBadConfig)
	}
	if err := c.Space.Validate(c.Self); err != nil {
		return fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	if c.R < 1 {
		return fmt.Errorf("%w: R=%d", ErrBadConfig, c.R)
	}
	return nil
}

// Service is one process's membership state. All methods are safe for
// concurrent use.
type Service struct {
	cfg Config
	now func() time.Time

	mu        sync.RWMutex
	records   map[string]*Record
	lastHeard map[string]time.Time
	suspicion map[string]int
	version   uint64
	alive     int    // count of alive records, maintained on every transition
	hash      uint64 // order-independent roster hash, maintained likewise

	// base, when non-nil, is the immutable shared roster this service was
	// bootstrapped from (see NewWithRoster); records then holds only the
	// overlay of lines that diverged. poolGone lists the base positions
	// excluded from the alive-peer pool — self plus every currently dead
	// line — sorted ascending. Invariant: poolGone = {i : base line i is
	// effectively not alive} ∪ {self}, so the pool seen through
	// poolAtLocked is exactly what peerCache would hold classically.
	base     *Roster
	poolGone []int32

	// peerCache and neighborCache are the sorted alive-peer and
	// immediate-neighbor lists, maintained incrementally on every liveness
	// transition: digest fan-out and heartbeats read them every membership
	// interval on every node, and rebuilding (or re-sorting) them per tick
	// dominates fleet-scale campaigns.
	selfPrefix    addr.Prefix
	peerCache     []addr.Address
	neighborCache []addr.Address

	// changelog records the keys touched by each version bump so tree
	// maintenance can fold deltas without rescanning the whole table; when
	// it overflows, readers fall back to a full scan.
	changelog    []changeEntry
	changelogMin uint64 // changes with version > changelogMin are complete

	// digestCache memoizes the full digest entries per version; mismatch
	// storms during churn would otherwise rebuild the O(n) slice for every
	// push-pull reply.
	digestCache   []DigestEntry
	digestVersion uint64 // 0 = invalid (version is always ≥ 1)
}

// changeEntry is one changelog line: the roster key touched when the
// service moved to the given version.
type changeEntry struct {
	version uint64
	key     string
}

// changelogCap bounds the changelog; overflow truncates the oldest half and
// moves changelogMin forward.
const changelogCap = 8192

// New builds a service seeded with the process's own record.
func New(cfg Config, selfSub interest.Subscription) (*Service, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	if cfg.SuspicionSweeps < 1 {
		cfg.SuspicionSweeps = 1
	}
	s := &Service{
		cfg:        cfg,
		now:        now,
		records:    make(map[string]*Record),
		lastHeard:  make(map[string]time.Time),
		suspicion:  make(map[string]int),
		selfPrefix: cfg.Self.Prefix(cfg.Space.Depth()),
	}
	s.records[cfg.Self.Key()] = &Record{Addr: cfg.Self, Sub: selfSub, Stamp: 1, Alive: true}
	s.alive = 1
	s.hash = recHash(cfg.Self.Key(), 1, true)
	s.version = 1
	s.changelog = append(s.changelog, changeEntry{version: 1, key: cfg.Self.Key()})
	return s, nil
}

// Self returns the owning address.
func (s *Service) Self() addr.Address { return s.cfg.Self }

// Version increases on every effective record change; the node rebuilds its
// tree views when it observes a new version.
func (s *Service) Version() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.version
}

// Len returns the number of alive records (including self). The count is
// maintained incrementally — runtimes poll it every tick.
func (s *Service) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.alive
}

// RosterHash returns the order-independent hash of the whole record table
// (keys, stamps, liveness). Two services with equal hashes hold identical
// rosters up to hash collision; digests compare it, and co-located runtimes
// use it to prove their folds interchangeable.
func (s *Service) RosterHash() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.hash
}

// recHash hashes one roster line (FNV-1a over the key, mixed with stamp and
// liveness through a splitmix64 finalizer). Line hashes combine by XOR into
// the Service's order-independent roster hash, so every mutation updates it
// in O(1).
func recHash(key string, stamp uint64, alive bool) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * 1099511628211
	}
	h ^= stamp * 0x9e3779b97f4a7c15
	if alive {
		h ^= 0xbf58476d1ce4e5b9
	}
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	return h ^ (h >> 31)
}

// touchHashLocked folds a line transition into the roster hash; zero stamp
// means no previous line.
func (s *Service) touchHashLocked(key string, oldStamp uint64, oldAlive bool, newStamp uint64, newAlive bool) {
	if oldStamp != 0 {
		s.hash ^= recHash(key, oldStamp, oldAlive)
	}
	s.hash ^= recHash(key, newStamp, newAlive)
}

// setAliveLocked folds one liveness transition into the alive counter and
// the sorted target caches. Self is counted but never cached (a process
// does not gossip to itself).
func (s *Service) setAliveLocked(a addr.Address, key string, nowAlive bool) {
	if nowAlive {
		s.alive++
	} else {
		s.alive--
	}
	if key == s.cfg.Self.Key() {
		return
	}
	if s.base != nil {
		// Roster mode: the pool is the base minus the exclusion set, so a
		// liveness transition moves the base position in or out of poolGone.
		// Addresses outside the base cannot reach here — apply materializes
		// before admitting one.
		idx, ok := s.base.index[key]
		if !ok {
			panic("membership: non-roster address in roster-mode pool transition")
		}
		if nowAlive {
			s.poolGone = removeIdx(s.poolGone, idx)
		} else {
			s.poolGone = insortIdx(s.poolGone, idx)
		}
	} else if nowAlive {
		s.peerCache = insortAddr(s.peerCache, a)
	} else {
		s.peerCache = removeAddr(s.peerCache, a)
	}
	if a.HasPrefix(s.selfPrefix) {
		if nowAlive {
			s.neighborCache = insortAddr(s.neighborCache, a)
		} else {
			s.neighborCache = removeAddr(s.neighborCache, a)
		}
	}
}

// insortAddr inserts a into the sorted list (no-op if present).
func insortAddr(list []addr.Address, a addr.Address) []addr.Address {
	i := sort.Search(len(list), func(i int) bool { return !list[i].Less(a) })
	if i < len(list) && list[i].Equal(a) {
		return list
	}
	list = append(list, addr.Address{})
	copy(list[i+1:], list[i:])
	list[i] = a
	return list
}

// removeAddr deletes a from the sorted list (no-op if absent).
func removeAddr(list []addr.Address, a addr.Address) []addr.Address {
	i := sort.Search(len(list), func(i int) bool { return !list[i].Less(a) })
	if i == len(list) || !list[i].Equal(a) {
		return list
	}
	return append(list[:i], list[i+1:]...)
}

// logChangeLocked appends one changelog line for the given (new) version.
func (s *Service) logChangeLocked(version uint64, key string) {
	if len(s.changelog) >= changelogCap {
		half := len(s.changelog) / 2
		s.changelogMin = s.changelog[half-1].version
		s.changelog = append(s.changelog[:0], s.changelog[half:]...)
	}
	s.changelog = append(s.changelog, changeEntry{version: version, key: key})
}

// ChangesSince returns the roster keys touched since the given version
// (possibly with duplicates), or ok=false when the changelog no longer
// reaches back that far and the caller must scan the full table.
func (s *Service) ChangesSince(v uint64) (keys []string, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if v < s.changelogMin {
		return nil, false
	}
	i := sort.Search(len(s.changelog), func(i int) bool { return s.changelog[i].version > v })
	for ; i < len(s.changelog); i++ {
		keys = append(keys, s.changelog[i].key)
	}
	return keys, true
}

// apply merges one record; the higher stamp wins, tombstones win ties.
// Returns whether state changed. Callers hold s.mu.
func (s *Service) apply(r Record) bool {
	key := r.Addr.Key()
	cur, ok := s.peekLocked(key)
	if !ok {
		// An address this service has never seen. In roster mode that means
		// it is outside the shared base: stop sharing and run classic from
		// here on (exceptional — only genuinely new joiners trigger it).
		s.materializeLocked()
		cp := r
		s.records[key] = &cp
		if r.Alive {
			s.setAliveLocked(r.Addr, key, true)
		}
		s.touchHashLocked(key, 0, false, r.Stamp, r.Alive)
		return true
	}
	if r.Stamp < cur.Stamp {
		return false
	}
	if r.Stamp == cur.Stamp && (cur.Alive == r.Alive) {
		return false
	}
	if r.Stamp == cur.Stamp && cur.Alive && !r.Alive {
		// Tombstone precedence at equal stamps.
		rec := s.mutableLocked(key)
		s.touchHashLocked(key, rec.Stamp, true, rec.Stamp, false)
		rec.Alive = false
		s.setAliveLocked(rec.Addr, key, false)
		return true
	}
	if r.Stamp == cur.Stamp {
		return false
	}
	// Self-defense: if someone declares us dead, resurrect with a higher
	// stamp so the correction propagates (we are obviously alive).
	if key == s.cfg.Self.Key() && !r.Alive {
		rec := s.mutableLocked(key)
		s.touchHashLocked(key, rec.Stamp, rec.Alive, r.Stamp+1, true)
		rec.Stamp = r.Stamp + 1
		if !rec.Alive {
			s.setAliveLocked(rec.Addr, key, true)
		}
		rec.Alive = true
		return true
	}
	rec := s.mutableLocked(key)
	if rec.Alive != r.Alive {
		s.setAliveLocked(r.Addr, key, r.Alive)
	}
	s.touchHashLocked(key, rec.Stamp, rec.Alive, r.Stamp, r.Alive)
	*rec = r
	return true
}

// Apply merges records from an Update, returning how many changed state.
func (s *Service) Apply(u Update) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	changed := 0
	for _, r := range u.Records {
		if s.apply(r) {
			changed++
			// Log against the version this batch will land on.
			s.logChangeLocked(s.version+1, r.Addr.Key())
		}
	}
	if changed > 0 {
		s.version++
	}
	s.markHeardLocked(u.From)
	return changed
}

// MakeDigest snapshots the service's (line, timestamp) pairs plus the
// roster summary. Entry order is unspecified: receivers compare sets, and
// an O(n log n) sort here would be pure overhead at fleet scale. The entry
// slice is memoized per version (divergence episodes trigger a push-pull
// reply per mismatched probe, and rebuilding the O(n) slice each time is
// the dominant cost of convergence); callers and receivers treat it as
// read-only.
func (s *Service) MakeDigest() Digest {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.digestVersion != s.version {
		s.digestCache = make([]DigestEntry, 0, s.recordCountLocked())
		s.visitLocked(func(key string, r *Record) {
			s.digestCache = append(s.digestCache,
				DigestEntry{Key: key, Stamp: r.Stamp, Alive: r.Alive})
		})
		s.digestVersion = s.version
	}
	return Digest{
		From:    s.cfg.Self,
		Hash:    s.hash,
		Count:   s.recordCountLocked(),
		Entries: s.digestCache,
	}
}

// MakeSummaryDigest snapshots only the roster summary — the O(1) probe the
// periodic anti-entropy task sends. Receivers whose roster hash matches do
// nothing; a mismatch makes them answer with a full digest (push-pull), so
// line-level comparison happens only across actual divergence.
func (s *Service) MakeSummaryDigest() Digest {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Digest{From: s.cfg.Self, Hash: s.hash, Count: s.recordCountLocked()}
}

// HandleDigest implements the pull: it returns an Update carrying every
// record the gossiper lacks or holds with a smaller timestamp. A nil Update
// means the gossiper is up to date.
//
// The second return value reports the reverse condition: the gossiper holds
// lines fresher than ours (or lines we lack entirely). Callers answer it by
// sending our own digest back, turning the exchange into push-pull. Pull
// alone has a liveness hole the chaos harness exposed: a process falsely
// expelled during a partition bumps its own stamp (self-defense) but is
// tombstoned in everyone's views, so no peer ever gossips a digest TO it —
// and pull semantics give it no way to push its resurrection outward. The
// counter-digest closes the loop (the resurrected line comes back with the
// peer's reply), and it cannot ping-pong: it is only sent for strictly
// fresher lines, and applying the resulting Update equalizes the stamps.
//
// The common case — converged peers exchanging identical rosters — is a
// single allocation-free pass over the digest; the set construction for
// lines missing from the digest only happens when the line counts prove
// some exist.
func (s *Service) HandleDigest(d Digest) (upd *Update, gossiperFresher bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.markHeardLocked(d.From)
	if d.Hash == s.hash && d.Count == s.recordCountLocked() {
		return nil, false // identical rosters, probe or full
	}
	if len(d.Entries) == 0 {
		// Mismatched summary probe: request the gossiper's full digest so
		// the line-level exchange happens (the caller answers fresher=true
		// with our own full digest).
		return nil, true
	}
	var fresh []Record
	shared := 0
	for _, e := range d.Entries {
		r, ok := s.peekLocked(e.Key)
		switch {
		case !ok:
			gossiperFresher = true // a line we lack entirely
		case e.Stamp < r.Stamp:
			shared++
			fresh = append(fresh, r)
		case e.Stamp > r.Stamp:
			shared++
			gossiperFresher = true
		default:
			shared++
			// Equal stamps: tombstone precedence decides who is fresher.
			if e.Alive && !r.Alive {
				fresh = append(fresh, r)
			} else if !e.Alive && r.Alive {
				gossiperFresher = true
			}
		}
	}
	if shared < s.recordCountLocked() {
		// The digest misses lines we hold; identify them.
		known := make(map[string]struct{}, len(d.Entries))
		for _, e := range d.Entries {
			known[e.Key] = struct{}{}
		}
		s.visitLocked(func(key string, r *Record) {
			if _, ok := known[key]; !ok {
				fresh = append(fresh, *r)
			}
		})
	}
	if len(fresh) == 0 {
		return nil, gossiperFresher
	}
	sort.Slice(fresh, func(i, j int) bool { return fresh[i].Addr.Less(fresh[j].Addr) })
	return &Update{From: s.cfg.Self, Records: fresh}, gossiperFresher
}

// GossipTargets picks up to k distinct random alive peers.
func (s *Service) GossipTargets(rng *rand.Rand, k int) []addr.Address {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.pickDistinctLocked(rng, k, nil)
}

// DigestTargets picks up to k distinct digest destinations, the first drawn
// from the process's immediate neighbors when it has any. The bias is what
// keeps the subgroup failure detector sound at scale: a neighbor's "last
// heard" must refresh every few membership intervals, which uniform fan-out
// over n ≫ subgroup-size peers cannot guarantee (the expected silence gap is
// (n/fanout)·interval). The remaining targets are uniform over all alive
// peers so anti-entropy still mixes globally.
func (s *Service) DigestTargets(rng *rand.Rand, k int) []addr.Address {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if k <= 0 || s.poolLenLocked() == 0 {
		return nil
	}
	var out []addr.Address
	used := make(map[string]bool, k)
	// The neighbor slot only exists when at least one uniform slot remains:
	// digests are the sole cross-subgroup membership channel, so a fanout
	// of 1 must mix globally (the heartbeat beacon keeps the subgroup
	// failure detector fed regardless).
	if len(s.neighborCache) > 0 && k >= 2 {
		nb := s.neighborCache[rng.Intn(len(s.neighborCache))]
		out = append(out, nb)
		used[nb.Key()] = true
	}
	return append(out, s.pickDistinctLocked(rng, k-len(out), used)...)
}

// pickDistinctLocked draws up to k distinct addresses from the sorted
// alive-peer pool by deterministic rejection sampling, skipping anything in
// used. The pool is the classic peerCache or, in roster mode, the identical
// logical sequence read through poolAtLocked — rng consumption and drawn
// addresses match between the modes exactly, which the golden traces pin.
func (s *Service) pickDistinctLocked(rng *rand.Rand, k int, used map[string]bool) []addr.Address {
	n := s.poolLenLocked()
	avail := n - len(used)
	if k > avail {
		k = avail
	}
	if k <= 0 {
		return nil
	}
	if used == nil {
		used = make(map[string]bool, k)
	}
	out := make([]addr.Address, 0, k)
	for len(out) < k {
		p := s.poolAtLocked(rng.Intn(n))
		if used[p.Key()] {
			continue
		}
		used[p.Key()] = true
		out = append(out, p)
	}
	return out
}

// BuildJoinRequest creates the announcement a joiner sends to its contact.
func (s *Service) BuildJoinRequest() JoinRequest {
	s.mu.RLock()
	defer s.mu.RUnlock()
	self := *s.records[s.cfg.Self.Key()]
	return JoinRequest{Joiner: self, Hops: s.cfg.Space.Depth()}
}

// HandleJoinRequest admits a joiner: the receiver merges the joiner's
// record, replies with its full view (so the joiner bootstraps), and — when
// it knows a process strictly closer to the joiner — returns that address so
// the caller forwards the request one hop further ("this is made
// recursively, until the most immediate delegates of the new process have
// been contacted").
func (s *Service) HandleJoinRequest(jr JoinRequest) (reply Update, forward addr.Address, ok bool) {
	s.mu.Lock()
	if s.apply(jr.Joiner) {
		s.version++
		s.logChangeLocked(s.version, jr.Joiner.Addr.Key())
	}
	s.markHeardLocked(jr.Joiner.Addr)
	records := make([]Record, 0, s.recordCountLocked())
	s.visitLocked(func(_ string, r *Record) {
		records = append(records, *r)
	})
	// Choose the forward hop over the sorted alive-peer pool: ties at equal
	// prefix depth must resolve identically on every process and every run
	// (map iteration order would make seeded replays diverge).
	selfDepth := s.cfg.Self.CommonPrefixDepth(jr.Joiner.Addr)
	var best addr.Address
	bestDepth := selfDepth
	s.poolVisitLocked(func(peer addr.Address) {
		if peer.Equal(jr.Joiner.Addr) {
			return
		}
		if d := peer.CommonPrefixDepth(jr.Joiner.Addr); d > bestDepth {
			bestDepth, best = d, peer
		}
	})
	s.mu.Unlock()

	sort.Slice(records, func(i, j int) bool { return records[i].Addr.Less(records[j].Addr) })
	reply = Update{From: s.cfg.Self, Records: records}
	if jr.Hops > 0 && !best.IsZero() {
		return reply, best, true
	}
	return reply, addr.Address{}, false
}

// Subscribe replaces the process's own interests, bumping its line stamp so
// the change propagates.
func (s *Service) Subscribe(sub interest.Subscription) {
	s.mu.Lock()
	defer s.mu.Unlock()
	self := s.records[s.cfg.Self.Key()]
	self.Sub = sub
	s.touchHashLocked(s.cfg.Self.Key(), self.Stamp, self.Alive, self.Stamp+1, self.Alive)
	self.Stamp++
	s.version++
	s.logChangeLocked(s.version, s.cfg.Self.Key())
}

// BuildLeave tombstones the process's own record and returns the
// notification to send to close neighbors.
func (s *Service) BuildLeave() Leave {
	s.mu.Lock()
	defer s.mu.Unlock()
	self := s.records[s.cfg.Self.Key()]
	s.touchHashLocked(s.cfg.Self.Key(), self.Stamp, self.Alive, self.Stamp+1, false)
	self.Stamp++
	if self.Alive {
		s.setAliveLocked(s.cfg.Self, s.cfg.Self.Key(), false)
	}
	self.Alive = false
	s.version++
	s.logChangeLocked(s.version, s.cfg.Self.Key())
	return Leave{Addr: s.cfg.Self, Stamp: self.Stamp}
}

// HandleLeave applies a departure notification.
func (s *Service) HandleLeave(l Leave) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.apply(Record{Addr: l.Addr, Stamp: l.Stamp, Alive: false}) {
		s.version++
		s.logChangeLocked(s.version, l.Addr.Key())
	}
}

// MarkHeard records life signs from a peer (any protocol message counts,
// membership or gossip — "every process keeps track of the last time it was
// contacted").
func (s *Service) MarkHeard(a addr.Address) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.markHeardLocked(a)
}

func (s *Service) markHeardLocked(a addr.Address) {
	if !a.IsZero() {
		s.lastHeard[a.Key()] = s.now()
		delete(s.suspicion, a.Key())
	}
}

// ImmediateNeighbors lists the alive processes sharing the depth-d prefix
// with self — the subgroup whose members monitor each other.
func (s *Service) ImmediateNeighbors() []addr.Address {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]addr.Address(nil), s.neighborCache...)
}

// SweepFailures tombstones immediate neighbors that have been silent longer
// than SuspectAfter, returning the newly suspected addresses. Neighbors
// never heard from are grandfathered at first sweep (their timer starts
// then), so a fresh join does not immediately expel its group.
func (s *Service) SweepFailures() []addr.Address {
	if s.cfg.SuspectAfter <= 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	var suspected []addr.Address
	// Walk a snapshot of the neighbor cache (exactly the alive immediate
	// neighbors, already sorted): expulsion mutates the cache mid-loop, and
	// scanning the whole record table per sweep would be O(fleet) for a
	// subgroup-sized concern.
	neighbors := append([]addr.Address(nil), s.neighborCache...)
	for _, a := range neighbors {
		key := a.Key()
		heard, ok := s.lastHeard[key]
		if !ok {
			s.lastHeard[key] = now
			continue
		}
		if now.Sub(heard) > s.cfg.SuspectAfter {
			s.suspicion[key]++
			if s.suspicion[key] < s.cfg.SuspicionSweeps {
				continue // confirmation phase (Section 6): not yet expelled
			}
			delete(s.suspicion, key)
			r := s.mutableLocked(key)
			s.touchHashLocked(key, r.Stamp, r.Alive, r.Stamp+1, false)
			r.Stamp++
			r.Alive = false
			s.setAliveLocked(r.Addr, key, false)
			s.version++
			s.logChangeLocked(s.version, key)
			suspected = append(suspected, r.Addr)
		}
	}
	// neighbors was sorted, so suspected already is.
	return suspected
}

// Snapshot materializes the alive records as tree members, ready for
// tree.Build.
func (s *Service) Snapshot() []tree.Member {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]tree.Member, 0, s.alive)
	s.visitLocked(func(_ string, r *Record) {
		if r.Alive {
			out = append(out, tree.Member{Addr: r.Addr, Sub: r.Sub})
		}
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Addr.Less(out[j].Addr) })
	return out
}

// VisitRecords calls fn for every record — alive and tombstoned — in
// unspecified order. It is the allocation-free dump the runtime's
// incremental tree maintenance diffs against; callers needing a stable
// order must sort what they collect.
func (s *Service) VisitRecords(fn func(Record)) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.visitLocked(func(_ string, r *Record) { fn(*r) })
}

// Lookup returns the record for an address.
func (s *Service) Lookup(a addr.Address) (Record, bool) {
	return s.LookupKey(a.Key())
}

// LookupKey returns the record for an address key (see addr.Address.Key).
func (s *Service) LookupKey(key string) (Record, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.peekLocked(key)
}
