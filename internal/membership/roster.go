// Shared-roster membership: the copy-on-write backing that lets a harness
// co-host tens of thousands of processes over one bootstrap roster.
//
// A classic Service holds the whole record table per process — O(n) lines
// each, O(n²) for a co-hosted fleet, which caps campaigns near a thousand
// processes. In roster mode every Service of a bootstrap fleet shares one
// immutable sorted Roster and keeps only an overlay: the records IT has
// seen change. All observable behavior — record lookups, digests, roster
// hash, and crucially the order and arity of random peer draws — is
// byte-identical to a classic service that applied the same roster line by
// line, which the pinned golden traces verify continuously (the oracle
// bootstrap always runs through this path).
//
// The alive-peer pool is where identity is subtle: classic sampling draws
// from a sorted materialized peer cache. Roster mode draws from the same
// logical sequence — the sorted base minus a (small) sorted exclusion set of
// base positions (self plus every line currently dead) — by mapping the
// drawn rank through the exclusion set, so rng consumption and the drawn
// addresses match the classic path exactly. A record for an address outside
// the base (a genuinely new joiner) falls back to full materialization for
// that one service.

package membership

import (
	"fmt"
	"sort"
	"time"

	"pmcast/internal/addr"
)

// Roster is an immutable bootstrap roster shared by many services: records
// sorted by address, with the precomputed index, order-independent hash and
// alive count every adopting service starts from. Build it once, hand it to
// every NewWithRoster.
type Roster struct {
	// Records is sorted by address and must not be mutated after NewRoster.
	Records []Record
	index   map[string]int32
	hash    uint64
	alive   int
}

// NewRoster builds a shared roster from the given records (copied, sorted
// by address). Duplicate addresses are an error.
func NewRoster(recs []Record) (*Roster, error) {
	r := &Roster{
		Records: make([]Record, len(recs)),
		index:   make(map[string]int32, len(recs)),
	}
	copy(r.Records, recs)
	sort.Slice(r.Records, func(i, j int) bool { return r.Records[i].Addr.Less(r.Records[j].Addr) })
	for i := range r.Records {
		rec := &r.Records[i]
		key := rec.Addr.Key()
		if _, dup := r.index[key]; dup {
			return nil, fmt.Errorf("membership: duplicate roster address %s", rec.Addr)
		}
		r.index[key] = int32(i)
		r.hash ^= recHash(key, rec.Stamp, rec.Alive)
		if rec.Alive {
			r.alive++
		}
	}
	return r, nil
}

// Len returns the number of roster lines.
func (r *Roster) Len() int { return len(r.Records) }

// lookup returns the base record for a key, if present.
func (r *Roster) lookup(key string) (*Record, int32, bool) {
	if r == nil {
		return nil, 0, false
	}
	i, ok := r.index[key]
	if !ok {
		return nil, 0, false
	}
	return &r.Records[i], i, true
}

// prefixRange returns the half-open index range [lo, hi) of roster records
// whose addresses carry the prefix. Records are address-sorted, so the
// range is contiguous and found by binary search.
func (r *Roster) prefixRange(p addr.Prefix) (lo, hi int) {
	n := len(r.Records)
	lo = sort.Search(n, func(i int) bool { return !addrBeforePrefix(r.Records[i].Addr, p) })
	hi = lo + sort.Search(n-lo, func(i int) bool { return !r.Records[lo+i].Addr.HasPrefix(p) })
	return lo, hi
}

// addrBeforePrefix reports whether a sorts strictly before every address
// carrying prefix p (digit-lexicographic order).
func addrBeforePrefix(a addr.Address, p addr.Prefix) bool {
	for i := 1; i <= p.Len(); i++ {
		if d, pd := a.Digit(i), p.Digit(i); d != pd {
			return d < pd
		}
	}
	return false
}

// NewWithRoster builds a service backed by a shared roster, equivalent to a
// classic service that applied every roster line (self's own line included —
// the roster carries each process's subscription). The service keeps only
// an overlay of records that later diverge from the base.
func NewWithRoster(cfg Config, base *Roster) (*Service, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	if cfg.SuspicionSweeps < 1 {
		cfg.SuspicionSweeps = 1
	}
	selfKey := cfg.Self.Key()
	selfRec, selfIdx, ok := base.lookup(selfKey)
	if !ok {
		return nil, fmt.Errorf("%w: self %s not in roster", ErrBadConfig, cfg.Self)
	}
	s := &Service{
		cfg:        cfg,
		now:        now,
		records:    make(map[string]*Record, 4),
		lastHeard:  make(map[string]time.Time),
		suspicion:  make(map[string]int),
		selfPrefix: cfg.Self.Prefix(cfg.Space.Depth()),
		base:       base,
	}
	// Self lives in the overlay from the start: subscribe/leave bump its
	// stamp, and overlay-shadowing with an identical value keeps the
	// incremental hash exact.
	selfCopy := *selfRec
	s.records[selfKey] = &selfCopy
	s.alive = base.alive
	s.hash = base.hash
	s.version = 1
	s.changelog = append(s.changelog, changeEntry{version: 1, key: selfKey})
	// The pool exclusion set: self plus every base line that is not alive.
	s.poolGone = append(s.poolGone, selfIdx)
	for i := range base.Records {
		if !base.Records[i].Alive && int32(i) != selfIdx {
			s.poolGone = insortIdx(s.poolGone, int32(i))
		}
	}
	// Immediate neighbors: the base's contiguous subgroup range, minus self.
	lo, hi := base.prefixRange(s.selfPrefix)
	for i := lo; i < hi; i++ {
		rec := &base.Records[i]
		if rec.Alive && int32(i) != selfIdx {
			s.neighborCache = append(s.neighborCache, rec.Addr)
		}
	}
	return s, nil
}

// insortIdx inserts v into the sorted index list (no-op if present).
func insortIdx(list []int32, v int32) []int32 {
	i := sort.Search(len(list), func(i int) bool { return list[i] >= v })
	if i < len(list) && list[i] == v {
		return list
	}
	list = append(list, 0)
	copy(list[i+1:], list[i:])
	list[i] = v
	return list
}

// removeIdx deletes v from the sorted index list (no-op if absent).
func removeIdx(list []int32, v int32) []int32 {
	i := sort.Search(len(list), func(i int) bool { return list[i] >= v })
	if i == len(list) || list[i] != v {
		return list
	}
	return append(list[:i], list[i+1:]...)
}

// recordCountLocked is the logical size of the record table. While the
// base is live the overlay only ever shadows base lines (a record for any
// new address triggers materialization first), so the base length is exact.
func (s *Service) recordCountLocked() int {
	if s.base == nil {
		return len(s.records)
	}
	return len(s.base.Records)
}

// peekLocked resolves a record value through the overlay then the base.
func (s *Service) peekLocked(key string) (Record, bool) {
	if r, ok := s.records[key]; ok {
		return *r, true
	}
	if r, _, ok := s.base.lookup(key); ok {
		return *r, true
	}
	return Record{}, false
}

// mutableLocked returns the overlay record for the key, copying the base
// line into the overlay on first mutation. Nil when the key is unknown.
func (s *Service) mutableLocked(key string) *Record {
	if r, ok := s.records[key]; ok {
		return r
	}
	if r, _, ok := s.base.lookup(key); ok {
		cp := *r
		s.records[key] = &cp
		return &cp
	}
	return nil
}

// visitLocked calls fn for every logical record (overlay shadows base) in
// unspecified order, mirroring classic map iteration.
func (s *Service) visitLocked(fn func(key string, r *Record)) {
	for k, r := range s.records {
		fn(k, r)
	}
	if s.base != nil {
		for i := range s.base.Records {
			rec := &s.base.Records[i]
			key := rec.Addr.Key()
			if _, shadowed := s.records[key]; shadowed {
				continue
			}
			fn(key, rec)
		}
	}
}

// poolLenLocked is the alive-peer pool size (classic: the peer cache).
func (s *Service) poolLenLocked() int {
	if s.base == nil {
		return len(s.peerCache)
	}
	return len(s.base.Records) - len(s.poolGone)
}

// poolAtLocked returns the j-th pool address in sorted order: the base
// position whose rank among non-excluded lines is j, found by a fixpoint
// over the sorted exclusion set (|gone| is small — self plus current dead).
func (s *Service) poolAtLocked(j int) addr.Address {
	if s.base == nil {
		return s.peerCache[j]
	}
	m := j
	for {
		k := sort.Search(len(s.poolGone), func(i int) bool { return s.poolGone[i] > int32(m) })
		if next := j + k; next != m {
			m = next
			continue
		}
		return s.base.Records[m].Addr
	}
}

// poolVisitLocked walks the pool in sorted order.
func (s *Service) poolVisitLocked(fn func(addr.Address)) {
	if s.base == nil {
		for _, a := range s.peerCache {
			fn(a)
		}
		return
	}
	g := 0
	for i := range s.base.Records {
		if g < len(s.poolGone) && s.poolGone[g] == int32(i) {
			g++
			continue
		}
		fn(s.base.Records[i].Addr)
	}
}

// materializeLocked abandons the shared base for this service: every base
// line is copied into the overlay and the classic peer cache is built, so
// all subsequent operations run the classic path. Triggered when a record
// outside the base appears (a genuinely new joiner) — exceptional, and the
// sampling sequence is unchanged because the materialized pool is exactly
// the logical pool.
func (s *Service) materializeLocked() {
	if s.base == nil {
		return
	}
	for i := range s.base.Records {
		rec := &s.base.Records[i]
		key := rec.Addr.Key()
		if _, shadowed := s.records[key]; shadowed {
			continue
		}
		cp := *rec
		s.records[key] = &cp
	}
	s.base = nil
	s.poolGone = nil
	s.peerCache = s.peerCache[:0]
	selfKey := s.cfg.Self.Key()
	for key, r := range s.records {
		if r.Alive && key != selfKey {
			s.peerCache = insortAddr(s.peerCache, r.Addr)
		}
	}
}
