// Churn properties: expel→rejoin sequences keep the view version monotone,
// never resurrect an expelled peer without a strictly fresher stamp, and
// keep the incrementally-maintained aggregates (alive count, sorted target
// caches, roster hash) consistent with the record table they summarize.
package membership

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"pmcast/internal/addr"
	"pmcast/internal/interest"
)

// churnService builds a service with an adjustable clock.
func churnService(t *testing.T, self string, now *time.Time) *Service {
	t.Helper()
	s, err := New(Config{
		Self:         addr.MustParse(self),
		Space:        addr.MustRegular(4, 2),
		R:            2,
		SuspectAfter: 100 * time.Millisecond,
		Now:          func() time.Time { return *now },
	}, interest.NewSubscription())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestExpelRejoinTable is the table-driven contract of one expel→rejoin
// cycle: which post-expulsion records may bring a peer back.
func TestExpelRejoinTable(t *testing.T) {
	peer := addr.New(0, 1)
	cases := []struct {
		name string
		// rejoin is applied after the peer was expelled (tombstone stamp 2).
		rejoin    Record
		wantAlive bool
	}{
		{
			name:      "stale original record does not resurrect",
			rejoin:    Record{Addr: peer, Stamp: 1, Alive: true},
			wantAlive: false,
		},
		{
			name:      "equal-stamp alive does not beat the tombstone",
			rejoin:    Record{Addr: peer, Stamp: 2, Alive: true},
			wantAlive: false,
		},
		{
			name:      "strictly fresher stamp rejoins",
			rejoin:    Record{Addr: peer, Stamp: 3, Alive: true},
			wantAlive: true,
		},
		{
			name:      "fresher tombstone stays dead",
			rejoin:    Record{Addr: peer, Stamp: 5, Alive: false},
			wantAlive: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			now := time.Unix(0, 0)
			s := churnService(t, "0.0", &now)
			s.Apply(Update{Records: []Record{{Addr: peer, Stamp: 1, Alive: true}}})

			// Start the silence timer, then cross the deadline and expel.
			s.MarkHeard(peer)
			now = now.Add(200 * time.Millisecond)
			expelled := s.SweepFailures()
			if len(expelled) != 1 || !expelled[0].Equal(peer) {
				t.Fatalf("expelled %v, want [%s]", expelled, peer)
			}
			rec, _ := s.Lookup(peer)
			if rec.Alive || rec.Stamp != 2 {
				t.Fatalf("post-expel record %+v, want dead stamp 2", rec)
			}
			preVersion := s.Version()

			s.Apply(Update{Records: []Record{tc.rejoin}})
			rec, _ = s.Lookup(peer)
			if rec.Alive != tc.wantAlive {
				t.Errorf("after rejoin record %+v: alive = %v, want %v", tc.rejoin, rec.Alive, tc.wantAlive)
			}
			if s.Version() < preVersion {
				t.Errorf("version moved backwards: %d -> %d", preVersion, s.Version())
			}
		})
	}
}

// TestChurnProperties drives a long randomized expel/rejoin/leave/flux
// sequence and checks the invariants after every step.
func TestChurnProperties(t *testing.T) {
	now := time.Unix(0, 0)
	s := churnService(t, "0.0", &now)
	space := addr.MustRegular(4, 2)
	rng := rand.New(rand.NewSource(99))

	// highestStamp tracks, per peer, the freshest stamp this service has
	// been shown; an alive record must always be explainable by an applied
	// alive record at its exact stamp (no spontaneous resurrection).
	lastVersion := s.Version()

	check := func(step int, op string) {
		t.Helper()
		if v := s.Version(); v < lastVersion {
			t.Fatalf("step %d (%s): version %d < %d — not monotone", step, op, v, lastVersion)
		} else {
			lastVersion = v
		}
		// Recount the aggregates from scratch and compare with the
		// incrementally maintained ones.
		alive := 0
		hash := uint64(0)
		s.VisitRecords(func(r Record) {
			if r.Alive {
				alive++
			}
			hash ^= recHash(r.Addr.Key(), r.Stamp, r.Alive)
		})
		if got := s.Len(); got != alive {
			t.Fatalf("step %d (%s): Len() = %d, recount = %d", step, op, got, alive)
		}
		if got := s.RosterHash(); got != hash {
			t.Fatalf("step %d (%s): roster hash drifted", step, op)
		}
		// Target caches: sorted, alive, non-self, neighbors have the prefix.
		peers := s.GossipTargets(rand.New(rand.NewSource(1)), 1<<30)
		seen := map[string]bool{}
		for i, p := range peers {
			if i > 0 && !peers[i-1].Less(p) {
				// GossipTargets shuffles; instead check membership facts only.
				_ = i
			}
			rec, ok := s.Lookup(p)
			if !ok || !rec.Alive {
				t.Fatalf("step %d (%s): target %s is not an alive record", step, op, p)
			}
			if p.Equal(s.Self()) {
				t.Fatalf("step %d (%s): self targeted", step, op)
			}
			if seen[p.Key()] {
				t.Fatalf("step %d (%s): duplicate target %s", step, op, p)
			}
			seen[p.Key()] = true
		}
		if want := alive - 1; len(peers) != want {
			t.Fatalf("step %d (%s): %d targets, want %d alive peers", step, op, len(peers), want)
		}
		nbrs := s.ImmediateNeighbors()
		prefix := s.Self().Prefix(space.Depth())
		for i, nb := range nbrs {
			if i > 0 && !nbrs[i-1].Less(nb) {
				t.Fatalf("step %d (%s): neighbors unsorted: %v", step, op, nbrs)
			}
			if !nb.HasPrefix(prefix) {
				t.Fatalf("step %d (%s): %s is no immediate neighbor", step, op, nb)
			}
		}
	}

	stamps := map[string]uint64{}
	expelledAt := map[string]uint64{} // key → tombstone stamp at expulsion
	for step := 0; step < 2000; step++ {
		i := 1 + rng.Intn(space.Capacity()-1)
		peer := space.AddressAt(i)
		key := peer.Key()
		var op string
		switch rng.Intn(6) {
		case 0, 1: // freshen or introduce the peer
			stamps[key]++
			if stamps[key] > expelledAt[key] {
				delete(expelledAt, key)
			}
			op = fmt.Sprintf("apply alive %s#%d", key, stamps[key])
			s.Apply(Update{Records: []Record{{
				Addr:  peer,
				Stamp: stamps[key],
				Alive: true,
				Sub:   interest.NewSubscription().Where("b", interest.EqInt(int64(rng.Intn(3)))),
			}}})
		case 2: // replay a stale or current record (must never resurrect)
			st := uint64(1 + rng.Intn(int(stamps[key]+1)))
			op = fmt.Sprintf("replay %s#%d", key, st)
			s.Apply(Update{Records: []Record{{Addr: peer, Stamp: st, Alive: true}}})
		case 3: // explicit leave at the next stamp
			stamps[key]++
			expelledAt[key] = stamps[key]
			op = fmt.Sprintf("leave %s#%d", key, stamps[key])
			s.HandleLeave(Leave{Addr: peer, Stamp: stamps[key]})
		case 4: // silence: advance past the deadline and sweep
			now = now.Add(60 * time.Millisecond)
			op = "sweep"
			for _, ex := range s.SweepFailures() {
				k := ex.Key()
				stamps[k]++ // expulsion bumps the line stamp
				expelledAt[k] = stamps[k]
			}
		case 5: // contact from a random peer resets its silence timer
			op = "heard " + key
			s.MarkHeard(peer)
		}
		check(step, op)

		// The resurrection property: any alive record must carry a stamp
		// strictly above the latest expulsion this service witnessed.
		s.VisitRecords(func(r Record) {
			if ex, was := expelledAt[r.Addr.Key()]; was && r.Alive && r.Stamp <= ex {
				t.Fatalf("step %d (%s): %s resurrected at stamp %d ≤ expulsion stamp %d",
					step, op, r.Addr, r.Stamp, ex)
			}
		})
	}
}
