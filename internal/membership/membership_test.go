package membership

import (
	"math/rand"
	"testing"
	"time"

	"pmcast/internal/addr"
	"pmcast/internal/interest"
)

func newService(t *testing.T, self string, now *time.Time) *Service {
	t.Helper()
	cfg := Config{
		Self:         addr.MustParse(self),
		Space:        addr.MustRegular(4, 2),
		R:            2,
		SuspectAfter: 10 * time.Second,
	}
	if now != nil {
		cfg.Now = func() time.Time { return *now }
	}
	s, err := New(cfg, interest.NewSubscription().Where("b", interest.Gt(0)))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}, interest.NewSubscription()); err == nil {
		t.Error("zero config accepted")
	}
	if _, err := New(Config{Self: addr.New(9, 9), Space: addr.MustRegular(4, 2), R: 2},
		interest.NewSubscription()); err == nil {
		t.Error("out-of-space self accepted")
	}
	if _, err := New(Config{Self: addr.New(1, 1), Space: addr.MustRegular(4, 2), R: 0},
		interest.NewSubscription()); err == nil {
		t.Error("R=0 accepted")
	}
}

func TestSelfRecordSeeded(t *testing.T) {
	s := newService(t, "1.2", nil)
	r, ok := s.Lookup(addr.New(1, 2))
	if !ok || !r.Alive || r.Stamp != 1 {
		t.Fatalf("self record = %+v, %v", r, ok)
	}
	if s.Len() != 1 {
		t.Errorf("len = %d", s.Len())
	}
}

func TestDigestPullCycle(t *testing.T) {
	a := newService(t, "0.0", nil)
	b := newService(t, "1.1", nil)
	// b learns about a through a's join announcement, then a pulls b's state.
	jr := a.BuildJoinRequest()
	reply, _, _ := b.HandleJoinRequest(jr)
	a.Apply(reply)
	if a.Len() != 2 {
		t.Fatalf("a should know both, len = %d", a.Len())
	}
	// Now a gossips a digest to b; b replies nothing (b's records are all in
	// a... actually b doesn't know a's subscription updates yet — b learned
	// a's record from the join, so the digest exchange finds both in sync).
	if upd, _ := b.HandleDigest(a.MakeDigest()); upd != nil {
		t.Errorf("unexpected update: %+v", upd)
	}
	// a updates its subscription; b's digest handling must push the stale
	// gossiper (a gossips to b, b replies with nothing since b is staler —
	// pull works the other way: b gossips to a, a replies with fresh line).
	a.Subscribe(interest.NewSubscription().Where("b", interest.Gt(10)))
	upd, _ := a.HandleDigest(b.MakeDigest())
	if upd == nil {
		t.Fatal("a should push its fresher self record to the gossiper b")
	}
	if got := b.Apply(*upd); got == 0 {
		t.Error("b did not apply the fresh record")
	}
	rec, _ := b.Lookup(addr.New(0, 0))
	if rec.Stamp != 2 {
		t.Errorf("b's copy stamp = %d, want 2", rec.Stamp)
	}
}

func TestApplyStampRules(t *testing.T) {
	s := newService(t, "0.0", nil)
	peer := addr.New(2, 2)
	if n := s.Apply(Update{Records: []Record{{Addr: peer, Stamp: 3, Alive: true}}}); n != 1 {
		t.Fatal("fresh record rejected")
	}
	// Stale stamp ignored.
	if n := s.Apply(Update{Records: []Record{{Addr: peer, Stamp: 2, Alive: false}}}); n != 0 {
		t.Error("stale record applied")
	}
	// Equal stamp: tombstone wins.
	if n := s.Apply(Update{Records: []Record{{Addr: peer, Stamp: 3, Alive: false}}}); n != 1 {
		t.Error("equal-stamp tombstone not applied")
	}
	// Equal stamp alive does not resurrect.
	if n := s.Apply(Update{Records: []Record{{Addr: peer, Stamp: 3, Alive: true}}}); n != 0 {
		t.Error("equal-stamp resurrect applied")
	}
	// Higher stamp resurrects.
	if n := s.Apply(Update{Records: []Record{{Addr: peer, Stamp: 4, Alive: true}}}); n != 1 {
		t.Error("higher-stamp update rejected")
	}
}

func TestSelfDefenseAgainstFalseTombstone(t *testing.T) {
	s := newService(t, "0.0", nil)
	v := s.Version()
	s.Apply(Update{Records: []Record{{Addr: addr.New(0, 0), Stamp: 9, Alive: false}}})
	rec, _ := s.Lookup(addr.New(0, 0))
	if !rec.Alive {
		t.Fatal("service accepted its own death")
	}
	if rec.Stamp <= 9 {
		t.Errorf("resurrection stamp %d must exceed the tombstone's", rec.Stamp)
	}
	if s.Version() == v {
		t.Error("version must bump so the correction propagates")
	}
}

func TestJoinForwardsTowardsNeighbors(t *testing.T) {
	// Contact 0.0 knows 2.0; joiner 2.3 should be forwarded to 2.0 (deeper
	// common prefix with the joiner than the contact itself).
	contact := newService(t, "0.0", nil)
	contact.Apply(Update{Records: []Record{{Addr: addr.New(2, 0), Stamp: 1, Alive: true}}})

	joiner := newService(t, "2.3", nil)
	reply, fwd, ok := contact.HandleJoinRequest(joiner.BuildJoinRequest())
	if len(reply.Records) != 3 {
		t.Errorf("join reply records = %d, want 3", len(reply.Records))
	}
	if !ok || !fwd.Equal(addr.New(2, 0)) {
		t.Errorf("forward = %v, %v; want 2.0", fwd, ok)
	}
	// The contact admitted the joiner.
	if _, known := contact.Lookup(addr.New(2, 3)); !known {
		t.Error("contact did not admit joiner")
	}
	// The neighbor itself has nobody closer: no forward.
	neighbor := newService(t, "2.0", nil)
	_, _, ok = neighbor.HandleJoinRequest(joiner.BuildJoinRequest())
	if ok {
		t.Error("immediate neighbor should not forward")
	}
}

func TestLeaveTombstonePropagates(t *testing.T) {
	a := newService(t, "0.0", nil)
	b := newService(t, "0.1", nil)
	reply, _, _ := b.HandleJoinRequest(a.BuildJoinRequest())
	a.Apply(reply)

	leave := a.BuildLeave()
	b.HandleLeave(leave)
	rec, _ := b.Lookup(addr.New(0, 0))
	if rec.Alive {
		t.Fatal("leave did not tombstone")
	}
	// The tombstone must flow onwards through anti-entropy.
	c := newService(t, "0.2", nil)
	if upd, _ := b.HandleDigest(c.MakeDigest()); upd != nil {
		c.Apply(*upd)
	}
	recC, known := c.Lookup(addr.New(0, 0))
	if !known || recC.Alive {
		t.Error("tombstone did not propagate via pull")
	}
}

func TestFailureDetection(t *testing.T) {
	now := time.Unix(1000, 0)
	s := newService(t, "0.0", &now)
	neighbor := addr.New(0, 1)
	distant := addr.New(3, 3)
	s.Apply(Update{From: neighbor, Records: []Record{
		{Addr: neighbor, Stamp: 1, Alive: true},
		{Addr: distant, Stamp: 1, Alive: true},
	}})
	// First sweep: nothing suspected (fresh contact).
	if sus := s.SweepFailures(); len(sus) != 0 {
		t.Fatalf("premature suspicion: %v", sus)
	}
	// Silence beyond the deadline: the neighbor is suspected, the distant
	// process is not monitored (only immediate neighbors are).
	now = now.Add(time.Minute)
	sus := s.SweepFailures()
	if len(sus) != 1 || !sus[0].Equal(neighbor) {
		t.Fatalf("suspected = %v, want [0.1]", sus)
	}
	rec, _ := s.Lookup(neighbor)
	if rec.Alive {
		t.Error("suspected neighbor not tombstoned")
	}
	if recD, _ := s.Lookup(distant); !recD.Alive {
		t.Error("distant process wrongly tombstoned")
	}
	// Life signs reset the clock.
	now = now.Add(time.Minute)
	s.Apply(Update{From: distant, Records: []Record{{Addr: neighbor, Stamp: 5, Alive: true}}})
	s.MarkHeard(neighbor)
	if sus := s.SweepFailures(); len(sus) != 0 {
		t.Errorf("re-suspected immediately after contact: %v", sus)
	}
}

func TestSuspicionConfirmationPhase(t *testing.T) {
	// With SuspicionSweeps=3, a silent neighbor survives two over-deadline
	// sweeps and is expelled on the third; any life sign resets the count.
	now := time.Unix(0, 0)
	cfg := Config{
		Self:            addr.New(0, 0),
		Space:           addr.MustRegular(4, 2),
		R:               2,
		SuspectAfter:    10 * time.Second,
		SuspicionSweeps: 3,
		Now:             func() time.Time { return now },
	}
	s, err := New(cfg, interest.NewSubscription())
	if err != nil {
		t.Fatal(err)
	}
	neighbor := addr.New(0, 1)
	s.Apply(Update{From: neighbor, Records: []Record{{Addr: neighbor, Stamp: 1, Alive: true}}})

	now = now.Add(time.Minute)
	if sus := s.SweepFailures(); len(sus) != 0 {
		t.Fatalf("expelled on first sweep: %v", sus)
	}
	if sus := s.SweepFailures(); len(sus) != 0 {
		t.Fatalf("expelled on second sweep: %v", sus)
	}
	// A life sign resets the confirmation counter.
	s.MarkHeard(neighbor)
	now = now.Add(time.Minute)
	if sus := s.SweepFailures(); len(sus) != 0 {
		t.Fatal("expelled right after contact")
	}
	if sus := s.SweepFailures(); len(sus) != 0 {
		t.Fatal("reset did not take effect")
	}
	if sus := s.SweepFailures(); len(sus) != 1 || !sus[0].Equal(neighbor) {
		t.Fatalf("third consecutive sweep should expel, got %v", sus)
	}
	rec, _ := s.Lookup(neighbor)
	if rec.Alive {
		t.Error("expelled neighbor still alive")
	}
}

func TestGossipTargets(t *testing.T) {
	s := newService(t, "0.0", nil)
	for i := 1; i < 8; i++ {
		s.Apply(Update{Records: []Record{{Addr: addr.New(i/4, i%4), Stamp: 1, Alive: true}}})
	}
	rng := rand.New(rand.NewSource(1))
	targets := s.GossipTargets(rng, 3)
	if len(targets) != 3 {
		t.Fatalf("targets = %d", len(targets))
	}
	seen := map[string]bool{}
	for _, a := range targets {
		if a.Equal(addr.New(0, 0)) {
			t.Error("self targeted")
		}
		if seen[a.Key()] {
			t.Error("duplicate target")
		}
		seen[a.Key()] = true
	}
	// Request exceeding peers caps gracefully.
	if got := s.GossipTargets(rng, 99); len(got) != 7 {
		t.Errorf("capped targets = %d, want 7", len(got))
	}
}

func TestImmediateNeighborsAndSnapshot(t *testing.T) {
	s := newService(t, "1.0", nil)
	s.Apply(Update{Records: []Record{
		{Addr: addr.New(1, 1), Stamp: 1, Alive: true},
		{Addr: addr.New(1, 2), Stamp: 1, Alive: false}, // dead: excluded
		{Addr: addr.New(2, 0), Stamp: 1, Alive: true},  // other subgroup
	}})
	nbrs := s.ImmediateNeighbors()
	if len(nbrs) != 1 || !nbrs[0].Equal(addr.New(1, 1)) {
		t.Errorf("neighbors = %v", nbrs)
	}
	snap := s.Snapshot()
	if len(snap) != 3 { // self + 1.1 + 2.0
		t.Errorf("snapshot = %d members", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if !snap[i-1].Addr.Less(snap[i].Addr) {
			t.Error("snapshot not sorted")
		}
	}
}

func TestSubscribeBumpsStamp(t *testing.T) {
	s := newService(t, "0.0", nil)
	v := s.Version()
	s.Subscribe(interest.NewSubscription().Where("z", interest.EqInt(1)))
	rec, _ := s.Lookup(addr.New(0, 0))
	if rec.Stamp != 2 {
		t.Errorf("stamp = %d", rec.Stamp)
	}
	if s.Version() <= v {
		t.Error("version not bumped")
	}
}

func TestAntiEntropyConvergence(t *testing.T) {
	// A ring of services, each gossiping digests to a random peer: all must
	// converge to identical record sets.
	const n = 8
	services := make([]*Service, n)
	for i := range services {
		services[i] = newService(t, addr.New(i/4, i%4).String(), nil)
	}
	// Everyone initially knows only the next ring member (via join).
	for i, s := range services {
		next := services[(i+1)%n]
		reply, _, _ := next.HandleJoinRequest(s.BuildJoinRequest())
		s.Apply(reply)
	}
	rng := rand.New(rand.NewSource(3))
	for round := 0; round < 40; round++ {
		for _, s := range services {
			for _, to := range s.GossipTargets(rng, 2) {
				// Route the digest to the owner of `to`.
				for _, other := range services {
					if other.Self().Equal(to) {
						if upd, _ := other.HandleDigest(s.MakeDigest()); upd != nil {
							s.Apply(*upd)
						}
					}
				}
			}
		}
	}
	for i, s := range services {
		if s.Len() != n {
			t.Errorf("service %d knows %d of %d members", i, s.Len(), n)
		}
	}
}
