// Package stats provides the small statistical helpers the experiment
// harness uses to aggregate Monte-Carlo runs: online mean/variance and
// normal-approximation confidence intervals.
package stats

import "math"

// Accumulator tracks mean and variance online (Welford's algorithm).
// The zero Accumulator is ready to use.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (a *Accumulator) Add(x float64) {
	a.n++
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// N returns the number of observations.
func (a *Accumulator) N() int { return a.n }

// Mean returns the sample mean (0 with no observations).
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance returns the unbiased sample variance (0 with < 2 observations).
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// StdErr returns the standard error of the mean.
func (a *Accumulator) StdErr() float64 {
	if a.n == 0 {
		return 0
	}
	return a.StdDev() / math.Sqrt(float64(a.n))
}

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval around the mean.
func (a *Accumulator) CI95() float64 { return 1.96 * a.StdErr() }

// Merge folds another accumulator into this one (parallel aggregation).
func (a *Accumulator) Merge(b Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = b
		return
	}
	n := float64(a.n + b.n)
	delta := b.mean - a.mean
	a.m2 += b.m2 + delta*delta*float64(a.n)*float64(b.n)/n
	a.mean += delta * float64(b.n) / n
	a.n += b.n
}
