package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	if a.N() != 0 || a.Mean() != 0 || a.Variance() != 0 || a.StdErr() != 0 {
		t.Error("zero accumulator not neutral")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Errorf("n = %d", a.N())
	}
	if math.Abs(a.Mean()-5) > 1e-12 {
		t.Errorf("mean = %g, want 5", a.Mean())
	}
	// Population variance of this classic set is 4; sample variance 32/7.
	if math.Abs(a.Variance()-32.0/7.0) > 1e-12 {
		t.Errorf("variance = %g, want %g", a.Variance(), 32.0/7.0)
	}
	if math.Abs(a.StdDev()-math.Sqrt(32.0/7.0)) > 1e-12 {
		t.Errorf("stddev = %g", a.StdDev())
	}
	wantSE := math.Sqrt(32.0/7.0) / math.Sqrt(8)
	if math.Abs(a.StdErr()-wantSE) > 1e-12 {
		t.Errorf("stderr = %g, want %g", a.StdErr(), wantSE)
	}
	if math.Abs(a.CI95()-1.96*wantSE) > 1e-12 {
		t.Errorf("ci95 = %g", a.CI95())
	}
}

func TestSingleObservation(t *testing.T) {
	var a Accumulator
	a.Add(3.5)
	if a.Mean() != 3.5 || a.Variance() != 0 {
		t.Errorf("single obs: mean %g var %g", a.Mean(), a.Variance())
	}
}

func TestMergeEqualsSequential(t *testing.T) {
	f := func(xs []float64, split uint8) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				return true // skip pathological inputs
			}
		}
		var whole Accumulator
		for _, x := range xs {
			whole.Add(x)
		}
		k := 0
		if len(xs) > 0 {
			k = int(split) % (len(xs) + 1)
		}
		var left, right Accumulator
		for _, x := range xs[:k] {
			left.Add(x)
		}
		for _, x := range xs[k:] {
			right.Add(x)
		}
		left.Merge(right)
		if left.N() != whole.N() {
			return false
		}
		if whole.N() == 0 {
			return true
		}
		return math.Abs(left.Mean()-whole.Mean()) < 1e-6 &&
			math.Abs(left.Variance()-whole.Variance()) < 1e-4*(1+whole.Variance())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMergeIntoEmpty(t *testing.T) {
	var a, b Accumulator
	b.Add(1)
	b.Add(3)
	a.Merge(b)
	if a.N() != 2 || a.Mean() != 2 {
		t.Errorf("merge into empty: n=%d mean=%g", a.N(), a.Mean())
	}
	var c Accumulator
	a.Merge(c) // merging empty is a no-op
	if a.N() != 2 {
		t.Error("merging empty changed state")
	}
}

func TestLargeSampleConvergence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var a Accumulator
	for i := 0; i < 200000; i++ {
		a.Add(rng.NormFloat64()*2 + 10)
	}
	if math.Abs(a.Mean()-10) > 0.05 {
		t.Errorf("mean = %g, want ≈10", a.Mean())
	}
	if math.Abs(a.StdDev()-2) > 0.05 {
		t.Errorf("stddev = %g, want ≈2", a.StdDev())
	}
}
