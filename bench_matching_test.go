// Benchmarks and acceptance tests of the compiled interest-matching engine
// (PR 5): compiled matchers versus the interpretive oracle, and the
// per-event susceptibility cache versus the naive re-walking path, both on
// the soak256 workload shape (the 4^4 fleet with class-clustered interests
// the sustained-throughput campaigns run).
package pmcast_test

import (
	"fmt"
	"math/rand"
	"testing"

	"pmcast/internal/addr"
	"pmcast/internal/core"
	"pmcast/internal/event"
	"pmcast/internal/interest"
	"pmcast/internal/tree"
)

// soak256Tree builds the soak256-shaped membership: the regular 4^4 tree
// with interests clustered by top-level subtree (b == digit(1) mod 4).
func soak256Tree(tb testing.TB) (*tree.Tree, addr.Space) {
	tb.Helper()
	space := addr.MustRegular(4, 4)
	members := make([]tree.Member, 0, 256)
	for i := 0; i < 256; i++ {
		a := space.AddressAt(i)
		members = append(members, tree.Member{
			Addr: a,
			Sub:  interest.NewSubscription().Where("b", interest.EqInt(int64(a.Digit(1)%4))),
		})
	}
	t, err := tree.Build(tree.Config{Space: space, R: 2}, members)
	if err != nil {
		tb.Fatal(err)
	}
	return t, space
}

func classEvent(class int64, seq uint64) event.Event {
	return event.NewBuilder().Int("b", class).
		Build(event.ID{Origin: "bench", Seq: seq})
}

// manyAttrMatcher builds one high-cardinality subscription (multi-point
// numeric set, string set, float band) and a probe event for it.
func manyAttrMatcher() (interest.Subscription, event.Event) {
	ivs := make([]interest.Interval, 0, 16)
	for k := 0; k < 16; k++ {
		ivs = append(ivs, interest.PointInterval(float64(k*4)))
	}
	sub := interest.NewSubscription().
		Where("b", interest.InIntervals(ivs...)).
		Where("e", interest.OneOf("t00", "t07", "t12", "t19", "t21", "t25", "t28", "t31")).
		Where("c", interest.Between(100, 600))
	ev := event.NewBuilder().Int("b", 28).Str("e", "t19").Float("c", 155.5).
		Build(event.ID{Origin: "bench", Seq: 1})
	return sub, ev
}

// BenchmarkMatchCompiled measures one compiled high-cardinality match
// against the interpretive oracle on the same subscription, and pins the
// compiled path's allocation contract: matching allocates nothing.
func BenchmarkMatchCompiled(b *testing.B) {
	sub, hit := manyAttrMatcher()
	miss := event.NewBuilder().Int("b", 3).Str("e", "t02").Float("c", 155.5).
		Build(event.ID{Origin: "bench", Seq: 2})
	cm := interest.Compile(sub)
	for _, ev := range []event.Event{hit, miss} {
		if cm.Matches(ev) != sub.Matches(ev) {
			b.Fatalf("compiled and naive disagree on %s", ev)
		}
		if allocs := testing.AllocsPerRun(100, func() { cm.Matches(ev) }); allocs != 0 {
			b.Fatalf("compiled match allocates (%v allocs/op); matching must be 0-alloc", allocs)
		}
	}
	evs := []event.Event{hit, miss}
	b.Run("compiled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cm.Matches(evs[i%2])
		}
	})
	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sub.Matches(evs[i%2])
		}
	})
}

// BenchmarkRateCached measures GETRATE through the susceptibility cache on
// the soak256 workload: steady-state (cache-hit) rate queries against a
// live Process, which must be allocation-free, versus the naive per-member
// summary walk the pre-engine runtime ran on every query.
func BenchmarkRateCached(b *testing.B) {
	t, space := soak256Tree(b)
	self := space.AddressAt(0)
	proc, err := core.BuildProcess(t, self, core.Config{F: 4, C: 3})
	if err != nil {
		b.Fatal(err)
	}
	evs := make([]event.Event, 4)
	for class := range evs {
		evs[class] = classEvent(int64(class), uint64(class+1))
	}
	// Warm the cache: first query per (event, depth) computes the profile.
	for _, ev := range evs {
		for depth := 1; depth <= t.Depth(); depth++ {
			if proc.ProfileFor(ev, depth) == nil {
				b.Fatalf("no view at depth %d", depth)
			}
		}
	}
	if allocs := testing.AllocsPerRun(100, func() {
		for _, ev := range evs {
			proc.ProfileFor(ev, 1)
		}
	}); allocs != 0 {
		b.Fatalf("steady-state cached rate allocates (%v allocs/op); must be 0-alloc", allocs)
	}
	views := make([]*tree.View, t.Depth())
	for depth := 1; depth <= t.Depth(); depth++ {
		views[depth-1] = t.ViewAt(self, depth)
	}
	b.Run("cached", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ev := evs[i%len(evs)]
			depth := 1 + i%t.Depth()
			_ = proc.ProfileFor(ev, depth).Rate
		}
	})
	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ev := evs[i%len(evs)]
			v := views[i%t.Depth()]
			_ = v.MatchingRate(ev) // the interpretive per-line walk
		}
	})
}

// naiveView adapts a tree.View to core.DepthView through the interpretive
// Summary path with no compiled matchers, and defeats the susceptibility
// cache by reporting a fresh generation on every query — reconstructing
// exactly the pre-engine cost model (every query re-walks the summaries,
// every round re-pays matching). Its comparison counter tallies what the
// naive path spends.
type naiveView struct {
	members []addr.Address
	lineOf  []int
	lines   []tree.Line
	selfIdx int
	selfLn  int
	gen     uint64
	counter *interest.MatchCounter
}

func newNaiveView(v *tree.View, self addr.Address, counter *interest.MatchCounter) *naiveView {
	if v == nil {
		return nil
	}
	nv := &naiveView{selfIdx: -1, selfLn: -1, lines: v.Lines, counter: counter}
	for li, line := range v.Lines {
		for _, m := range line.Delegates {
			if m.Equal(self) {
				nv.selfIdx = len(nv.members)
				nv.selfLn = li
			}
			nv.members = append(nv.members, m)
			nv.lineOf = append(nv.lineOf, li)
		}
	}
	if nv.selfLn < 0 {
		depthDigit := v.Prefix.Len() + 1
		if depthDigit <= self.Depth() {
			for li, line := range v.Lines {
				if line.Infix == self.Digit(depthDigit) {
					nv.selfLn = li
					break
				}
			}
		}
	}
	return nv
}

func (nv *naiveView) matchLine(ev event.Event, li int) bool {
	return nv.lines[li].Summary.MatchesCounted(ev, nv.counter)
}

func (nv *naiveView) Size() int                   { return len(nv.members) }
func (nv *naiveView) MemberAt(i int) addr.Address { return nv.members[i] }
func (nv *naiveView) SelfIndex() int              { return nv.selfIdx }
func (nv *naiveView) SusceptibleAt(ev event.Event, i int) bool {
	return nv.matchLine(ev, nv.lineOf[i])
}
func (nv *naiveView) Rate(ev event.Event) float64 {
	if len(nv.members) == 0 {
		return 0
	}
	hits := 0
	for _, li := range nv.lineOf {
		if nv.matchLine(ev, li) {
			hits++
		}
	}
	return float64(hits) / float64(len(nv.members))
}
func (nv *naiveView) MatchingSubgroups(ev event.Event) (int, bool) {
	total, selfIn := 0, false
	for li := range nv.lines {
		if nv.matchLine(ev, li) {
			total++
			if li == nv.selfLn {
				selfIn = true
			}
		}
	}
	return total, selfIn
}

// Generation implements core.Generational with a fresh value per query, so
// the Process-level cache can never serve a hit: every profile is
// recomputed through the per-member fallback, like the pre-engine runtime.
func (nv *naiveView) Generation() uint64 {
	nv.gen++
	return nv.gen
}

// TestRateCachedComparisonReduction is the matching-engine acceptance
// criterion: on the soak256 workload, a full dissemination driven through
// the cached compiled path performs at least 5× fewer attribute comparisons
// per gossip round than the identical dissemination driven through the
// naive re-walking path — while emitting the identical send sequence.
func TestRateCachedComparisonReduction(t *testing.T) {
	tr, space := soak256Tree(t)
	self := space.AddressAt(0)
	cfg := core.Config{F: 4, C: 3}

	cached, err := core.BuildProcess(tr, self, cfg)
	if err != nil {
		t.Fatal(err)
	}

	var naiveCost interest.MatchCounter
	nviews := make([]core.DepthView, tr.Depth())
	for depth := 1; depth <= tr.Depth(); depth++ {
		if nv := newNaiveView(tr.ViewAt(self, depth), self, &naiveCost); nv != nil {
			nviews[depth-1] = nv
		}
	}
	m, _ := tr.Member(self)
	ncfg := cfg
	ncfg.D = tr.Depth()
	naive, err := core.NewProcess(self, ncfg, nviews, m.Sub.Matches)
	if err != nil {
		t.Fatal(err)
	}

	// Identical workload, identical RNG: a four-class burst disseminating to
	// quiescence, the per-round shape of the soak campaigns.
	run := func(p *core.Process, seed int64) (sends []string, rounds int) {
		rng := rand.New(rand.NewSource(seed))
		for class := int64(0); class < 4; class++ {
			if err := p.Multicast(classEvent(class, uint64(class+1))); err != nil {
				t.Fatal(err)
			}
		}
		for p.Pending() > 0 {
			rounds++
			if rounds > 256 {
				t.Fatal("dissemination did not quiesce")
			}
			for _, s := range p.Tick(rng) {
				sends = append(sends, fmt.Sprintf("%s|%s#%d@%d", s.To, s.Gossip.Event.ID().Origin, s.Gossip.Event.ID().Seq, s.Gossip.Depth))
			}
		}
		return sends, rounds
	}

	cachedSends, cachedRounds := run(cached, 99)
	naiveSends, naiveRounds := run(naive, 99)
	if cachedRounds != naiveRounds || len(cachedSends) != len(naiveSends) {
		t.Fatalf("paths diverged: %d/%d rounds, %d/%d sends", cachedRounds, naiveRounds, len(cachedSends), len(naiveSends))
	}
	for i := range cachedSends {
		if cachedSends[i] != naiveSends[i] {
			t.Fatalf("send %d diverged: cached %s, naive %s", i, cachedSends[i], naiveSends[i])
		}
	}

	cachedCmp := cached.MatchStats().Comparisons
	naiveCmp := naiveCost.Comparisons
	cachedPerRound := float64(cachedCmp) / float64(cachedRounds)
	naivePerRound := float64(naiveCmp) / float64(naiveRounds)
	t.Logf("attribute comparisons/round: cached %.1f vs naive %.1f (%.1fx reduction over %d rounds)",
		cachedPerRound, naivePerRound, naivePerRound/cachedPerRound, cachedRounds)
	if naivePerRound < 5*cachedPerRound {
		t.Errorf("cached path must do ≥5x fewer comparisons/round: cached %.1f, naive %.1f",
			cachedPerRound, naivePerRound)
	}
}
