// Udpcluster runs a pmcast group as real operating-system processes talking
// UDP over loopback — the paper's deployment environment, not a simulation.
//
// The parent process reserves one loopback port per member, then re-executes
// itself once per address in child mode. Each child builds a UDP transport
// from the shared address→socket table, joins through the first member, and
// prints what it delivers. Two buildings subscribe to different reading
// bands; the last child publishes one reading of each band, and every child
// must deliver exactly the one matching its subscription.
//
// Run with: go run ./examples/udpcluster
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/exec"
	"strings"
	"sync"
	"time"

	"pmcast"
)

const (
	arity = 2
	depth = 3 // 8 members: building.floor.room with binary digits
)

func main() {
	childAddr := flag.String("addr", "", "run as the cluster member with this address (internal)")
	peerSpec := flag.String("peers", "", "comma-separated addr=host:port table (internal)")
	publish := flag.Bool("publish", false, "this member publishes the readings (internal)")
	flag.Parse()

	if *childAddr != "" {
		if err := runChild(*childAddr, *peerSpec, *publish); err != nil {
			log.Fatalf("child %s: %v", *childAddr, err)
		}
		return
	}
	if err := runParent(); err != nil {
		log.Fatal(err)
	}
}

// runParent reserves sockets, spawns one child process per address and
// relays their output.
func runParent() error {
	space := pmcast.MustRegularSpace(arity, depth)
	addrs := make([]string, space.Capacity())
	specs := make([]string, space.Capacity())
	for i := range addrs {
		addrs[i] = space.AddressAt(i).String()
		port, err := freeLoopbackPort()
		if err != nil {
			return err
		}
		specs[i] = fmt.Sprintf("%s=127.0.0.1:%d", addrs[i], port)
	}
	peers := strings.Join(specs, ",")
	self, err := os.Executable()
	if err != nil {
		return err
	}

	fmt.Printf("spawning %d processes over loopback UDP\n", len(addrs))
	var wg sync.WaitGroup
	errs := make(chan error, len(addrs))
	for i, a := range addrs {
		args := []string{"-addr", a, "-peers", peers}
		if i == len(addrs)-1 {
			args = append(args, "-publish")
		}
		cmd := exec.Command(self, args...)
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return err
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return err
		}
		wg.Add(2)
		go func(a string) {
			defer wg.Done()
			sc := bufio.NewScanner(stdout)
			for sc.Scan() {
				fmt.Printf("[%s] %s\n", a, sc.Text())
			}
		}(a)
		go func(a string, cmd *exec.Cmd) {
			defer wg.Done()
			if err := cmd.Wait(); err != nil {
				errs <- fmt.Errorf("process %s: %w", a, err)
			}
		}(a, cmd)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}
	fmt.Println("udpcluster complete: every process delivered exactly its band")
	return nil
}

// runChild is one cluster member: a pmcast node over a real UDP socket.
func runChild(addrStr, peerSpec string, publisher bool) error {
	peers := make(map[string]string)
	var contact string
	for _, kv := range strings.Split(peerSpec, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return fmt.Errorf("bad peer entry %q", kv)
		}
		if contact == "" {
			contact = k
		}
		peers[k] = v
	}
	res, err := pmcast.NewStaticResolver(peers)
	if err != nil {
		return err
	}
	// The full production datapath: kernel-batched I/O (sendmmsg/recvmmsg
	// where the platform has it, with explicit socket buffers) feeding the
	// staged engine — deferred decode pairs with the ingress workers.
	tr, err := pmcast.NewUDPTransport(pmcast.UDPConfig{
		Resolver:         res,
		DeferDecode:      true,
		ReadBufferBytes:  1 << 20,
		WriteBufferBytes: 1 << 20,
	})
	if err != nil {
		return err
	}
	defer tr.Close()

	self := pmcast.MustParseAddress(addrStr)
	// Building 0 wants small readings, building 1 large ones.
	sub := pmcast.Where("reading", pmcast.Lt(50))
	if self.Digit(1) == 1 {
		sub = pmcast.Where("reading", pmcast.Ge(50))
	}
	n, err := pmcast.NewNode(tr,
		pmcast.WithAddr(self),
		pmcast.WithSpace(pmcast.MustRegularSpace(arity, depth)),
		pmcast.WithGroupRedundancy(2),
		pmcast.WithFanout(4),
		pmcast.WithPittelC(3),
		pmcast.WithSubscription(sub),
		pmcast.WithGossipInterval(8*time.Millisecond),
		pmcast.WithMembershipInterval(12*time.Millisecond),
		pmcast.WithSuspectAfter(time.Minute),
		pmcast.WithParallelism(2, 2),
	)
	if err != nil {
		return err
	}
	n.Start()
	defer n.Stop()
	if addrStr != contact {
		if err := n.Join(pmcast.MustParseAddress(contact)); err != nil {
			return err
		}
	}

	want := len(peers)
	deadline := time.Now().Add(30 * time.Second)
	for n.KnownMembers() != want {
		if time.Now().After(deadline) {
			return fmt.Errorf("membership stalled at %d/%d", n.KnownMembers(), want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("joined: %d members, subscribed to %s\n", n.KnownMembers(), sub)

	if publisher {
		for _, reading := range []float64{12, 87} {
			if _, err := n.Publish(map[string]pmcast.Value{
				"reading": pmcast.Float(reading),
			}); err != nil {
				return err
			}
		}
	}

	// Exactly one of the two readings matches this member's band.
	select {
	case ev := <-n.Deliveries():
		r, _ := ev.Attr("reading").AsFloat()
		fmt.Printf("delivered reading=%g\n", r)
	case <-time.After(30 * time.Second):
		return fmt.Errorf("no delivery")
	}
	// A second delivery would mean the band filter leaked.
	select {
	case ev := <-n.Deliveries():
		return fmt.Errorf("unexpected extra delivery %v", ev)
	case <-time.After(300 * time.Millisecond):
	}
	if st := tr.Stats(); st.BatchSend {
		fmt.Printf("kernel batching: %d datagrams in %d send syscalls, %d in %d recv syscalls\n",
			st.SentDatagrams, st.SendSyscalls, st.RecvDatagrams, st.RecvSyscalls)
	}
	return nil
}

// freeLoopbackPort reserves an ephemeral UDP port and releases it for the
// child to re-bind. The tiny window between release and re-bind is fine for
// an example; production deployments assign ports in their manifest.
func freeLoopbackPort() (int, error) {
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return 0, err
	}
	port := conn.LocalAddr().(*net.UDPAddr).Port
	return port, conn.Close()
}
