// Quickstart: a four-process pmcast group on the in-memory network.
// Two processes subscribe to small readings, one to large ones; the fourth
// publishes. Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"pmcast"
)

func main() {
	net := pmcast.MustNetwork(pmcast.NetworkConfig{})
	space := pmcast.MustRegularSpace(2, 2) // addresses x.y with x,y ∈ {0,1}

	specs := []struct {
		addr string
		sub  pmcast.Subscription
	}{
		{"0.0", pmcast.Where("reading", pmcast.Lt(50))},
		{"0.1", pmcast.Where("reading", pmcast.Lt(50))},
		{"1.0", pmcast.Where("reading", pmcast.Ge(50))},
		{"1.1", pmcast.MatchAll()},
	}
	nodes := make([]*pmcast.Node, 0, len(specs))
	for _, sp := range specs {
		n, err := pmcast.NewNode(net,
			pmcast.WithAddr(pmcast.MustParseAddress(sp.addr)),
			pmcast.WithSpace(space),
			pmcast.WithGroupRedundancy(1),
			pmcast.WithFanout(2),
			pmcast.WithPittelC(2),
			pmcast.WithSubscription(sp.sub),
			pmcast.WithGossipInterval(5*time.Millisecond),
			pmcast.WithMembershipInterval(10*time.Millisecond),
		)
		if err != nil {
			log.Fatal(err)
		}
		n.Start()
		defer n.Stop()
		nodes = append(nodes, n)
	}
	// Everyone joins through the first node.
	for _, n := range nodes[1:] {
		if err := n.Join(nodes[0].Addr()); err != nil {
			log.Fatal(err)
		}
	}
	waitForMembership(nodes, len(nodes))
	fmt.Printf("group converged: %d members\n", nodes[0].KnownMembers())

	// 1.1 publishes two readings: one small, one large.
	for _, reading := range []float64{12, 87} {
		if _, err := nodes[3].Publish(map[string]pmcast.Value{
			"reading": pmcast.Float(reading),
		}); err != nil {
			log.Fatal(err)
		}
	}

	// Collect deliveries for a moment.
	deadline := time.After(2 * time.Second)
	expected := map[string]int{"0.0": 1, "0.1": 1, "1.0": 1, "1.1": 2}
	got := map[string]int{}
	for len(got) < len(nodes) {
		progressed := false
		for i, n := range nodes {
			select {
			case ev := <-n.Deliveries():
				r, _ := ev.Attr("reading").AsFloat()
				fmt.Printf("%s delivered reading=%g (want %s)\n",
					specs[i].addr, r, specs[i].sub)
				got[specs[i].addr]++
				progressed = true
			default:
			}
			if got[specs[i].addr] >= expected[specs[i].addr] {
				// done for this node
			}
		}
		if !progressed {
			select {
			case <-deadline:
				fmt.Println("timeout waiting for deliveries")
				return
			case <-time.After(5 * time.Millisecond):
			}
		}
		if done(got, expected) {
			break
		}
	}
	fmt.Println("quickstart complete: every subscriber saw exactly its events")
}

func done(got, want map[string]int) bool {
	for k, w := range want {
		if got[k] < w {
			return false
		}
	}
	return true
}

func waitForMembership(nodes []*pmcast.Node, want int) {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		all := true
		for _, n := range nodes {
			if n.KnownMembers() != want {
				all = false
				break
			}
		}
		if all {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
}
