// Viewtables renders the membership view stack of the paper's Figure 2: the
// per-depth tables (infix, regrouped interests, delegates, process counts)
// of a process in a depth-4 tree populated after the paper's example
// (prefix 128.178.73, attributes b, c, e, z). Run with:
// go run ./examples/viewtables
package main

import (
	"fmt"
	"log"

	"pmcast/internal/addr"
	"pmcast/internal/interest"
	"pmcast/internal/tree"
)

func main() {
	// A compact space shaped like IPv4 for the digits used by the example.
	space, err := addr.NewSpace(256, 256, 256, 256)
	if err != nil {
		log.Fatal(err)
	}
	sub := func(cs ...struct {
		attr string
		c    interest.Criterion
	}) interest.Subscription {
		s := interest.NewSubscription()
		for _, x := range cs {
			s = s.Where(x.attr, x.c)
		}
		return s
	}
	w := func(attr string, c interest.Criterion) struct {
		attr string
		c    interest.Criterion
	} {
		return struct {
			attr string
			c    interest.Criterion
		}{attr, c}
	}

	// The depth-4 view of Figure 2 (subgroup 128.178.73) plus enough
	// processes in sibling subgroups to populate depths 1–3.
	members := []tree.Member{
		// 128.178.73.* — the leaf group, interests straight from Figure 2.
		{Addr: addr.MustParse("128.178.73.3"), Sub: sub(w("b", interest.EqInt(2)), w("c", interest.Gt(40.0)), w("z", interest.EqInt(20000)))},
		{Addr: addr.MustParse("128.178.73.17"), Sub: sub(w("b", interest.EqInt(5)), w("c", interest.Gt(53.5)))},
		{Addr: addr.MustParse("128.178.73.19"), Sub: sub(w("b", interest.Gt(1)), w("c", interest.Between(20.0, 30.0)), w("z", interest.Le(50000)))},
		{Addr: addr.MustParse("128.178.73.116"), Sub: sub(w("b", interest.Gt(0)), w("c", interest.Gt(20.0)))},
		{Addr: addr.MustParse("128.178.73.119"), Sub: sub(w("b", interest.EqInt(4)), w("z", interest.Between(2000, 30000)))},
		{Addr: addr.MustParse("128.178.73.124"), Sub: sub(w("b", interest.EqInt(3)), w("c", interest.Ge(35.997)))},
		{Addr: addr.MustParse("128.178.73.223"), Sub: sub(w("b", interest.EqInt(2)))},
		// Sibling subgroups of 128.178 (Figure 2, view of depth 3).
		{Addr: addr.MustParse("128.178.41.21"), Sub: sub(w("b", interest.EqInt(3)), w("z", interest.EqInt(42000)))},
		{Addr: addr.MustParse("128.178.41.23"), Sub: sub(w("b", interest.EqInt(3)), w("z", interest.EqInt(42000)))},
		{Addr: addr.MustParse("128.178.88.10"), Sub: sub(w("b", interest.Gt(5)), w("e", interest.OneOf("Tom")))},
		{Addr: addr.MustParse("128.178.88.13"), Sub: sub(w("b", interest.Gt(5)), w("e", interest.OneOf("Tom")))},
		{Addr: addr.MustParse("128.178.98.15"), Sub: sub(w("b", interest.Gt(4)), w("c", interest.Between(20.0, 35.0)), w("z", interest.Lt(23002)))},
		{Addr: addr.MustParse("128.178.110.1"), Sub: sub(w("b", interest.Gt(6)), w("z", interest.Gt(45320)))},
		// Sibling subgroups of 128 (view of depth 2).
		{Addr: addr.MustParse("128.3.2.230"), Sub: sub(w("b", interest.Gt(3)), w("c", interest.Between(10.0, 220.0)))},
		{Addr: addr.MustParse("128.18.120.4"), Sub: sub(w("b", interest.EqInt(2)), w("e", interest.OneOf("Bob", "Tom")))},
		{Addr: addr.MustParse("128.56.12.24"), Sub: sub(w("b", interest.Gt(1)), w("c", interest.Gt(155.6)))},
		// Top-level subgroups (view of depth 1).
		{Addr: addr.MustParse("3.2.230.23"), Sub: interest.NewSubscription()},
		{Addr: addr.MustParse("18.12.2.183"), Sub: sub(w("z", interest.Gt(10000)))},
	}

	t, err := tree.Build(tree.Config{Space: space, R: 3}, members)
	if err != nil {
		log.Fatal(err)
	}
	self := addr.MustParse("128.178.73.3")
	fmt.Printf("membership views of process %s (R=3, d=4)\n", self)
	fmt.Printf("knows %d processes of %d in the group (Eq. 2)\n\n",
		t.KnownProcesses(self), t.Len())
	for depth := 1; depth <= t.Depth(); depth++ {
		fmt.Println(tree.RenderView(t.ViewAt(self, depth)))
	}
}
