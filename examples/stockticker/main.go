// Stockticker: the content-based publish/subscribe workload the paper's
// introduction motivates. 27 trading processes (a 3×3×3 tree, e.g. three
// data centers × three racks × three hosts) subscribe to quotes by symbol
// and price band; a feed process publishes a stream of quotes. pmcast
// delivers each quote to exactly the interested traders without flooding
// the rest. Run with: go run ./examples/stockticker
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"time"

	"pmcast"
)

const (
	groupArity = 3
	treeDepth  = 3
)

var symbols = []string{"ACME", "GLOBEX", "INITECH"}

func main() {
	net := pmcast.MustNetwork(pmcast.NetworkConfig{})
	space := pmcast.MustRegularSpace(groupArity, treeDepth)
	rng := rand.New(rand.NewSource(7))

	// Build 27 traders with heterogeneous interests.
	type trader struct {
		node *pmcast.Node
		sub  pmcast.Subscription
		want int
		got  int
	}
	traders := make([]*trader, 0, space.Capacity())
	for i := 0; i < space.Capacity(); i++ {
		sub := randomSubscription(rng)
		n, err := pmcast.NewNode(net,
			pmcast.WithAddr(space.AddressAt(i)),
			pmcast.WithSpace(space),
			pmcast.WithGroupRedundancy(2),
			pmcast.WithFanout(3),
			pmcast.WithPittelC(2),
			pmcast.WithSubscription(sub),
			pmcast.WithGossipInterval(4*time.Millisecond),
			pmcast.WithMembershipInterval(8*time.Millisecond),
		)
		if err != nil {
			log.Fatal(err)
		}
		n.Start()
		defer n.Stop()
		traders = append(traders, &trader{node: n, sub: sub})
	}
	contact := traders[0].node.Addr()
	for _, tr := range traders[1:] {
		if err := tr.node.Join(contact); err != nil {
			log.Fatal(err)
		}
	}
	waitForMembership(traders, func(tr *trader) int { return tr.node.KnownMembers() }, len(traders))
	fmt.Printf("trading group converged: %d members\n", len(traders))

	// The feed (trader 0) publishes a stream of quotes.
	const quotes = 12
	published := make([]map[string]pmcast.Value, 0, quotes)
	for q := 0; q < quotes; q++ {
		quote := map[string]pmcast.Value{
			"symbol": pmcast.Str(symbols[rng.Intn(len(symbols))]),
			"price":  pmcast.Float(float64(10 + rng.Intn(190))),
			"volume": pmcast.Int(int64(100 * (1 + rng.Intn(50)))),
		}
		if _, err := traders[0].node.Publish(quote); err != nil {
			log.Fatal(err)
		}
		published = append(published, quote)
		time.Sleep(3 * time.Millisecond)
	}
	// Expected deliveries per trader.
	for _, tr := range traders {
		for _, quote := range published {
			ev := pmcast.NewEventBuilder().
				Str("symbol", mustStr(quote["symbol"])).
				Float("price", mustFloat(quote["price"])).
				Int("volume", mustInt(quote["volume"])).
				Build(pmcast.EventID{Origin: "x", Seq: 1})
			if tr.sub.Matches(ev) {
				tr.want++
			}
		}
	}

	// Drain deliveries until everyone matched expectations (or timeout).
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		pending := false
		for _, tr := range traders {
			for {
				select {
				case <-tr.node.Deliveries():
					tr.got++
					continue
				default:
				}
				break
			}
			if tr.got < tr.want {
				pending = true
			}
		}
		if !pending {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Report.
	sort.Slice(traders, func(i, j int) bool {
		return traders[i].node.Addr().Less(traders[j].node.Addr())
	})
	total, totalWant := 0, 0
	for _, tr := range traders {
		fmt.Printf("%-6s %-40s delivered %2d/%2d\n",
			tr.node.Addr(), tr.sub, tr.got, tr.want)
		total += tr.got
		totalWant += tr.want
	}
	fmt.Printf("delivered %d of %d expected quote notifications (%d quotes × 27 traders = %d possible)\n",
		total, totalWant, quotes, quotes*len(traders))
}

func randomSubscription(rng *rand.Rand) pmcast.Subscription {
	sym := symbols[rng.Intn(len(symbols))]
	switch rng.Intn(3) {
	case 0: // symbol watcher
		return pmcast.Where("symbol", pmcast.OneOf(sym))
	case 1: // bargain hunter
		return pmcast.Where("price", pmcast.Lt(float64(40+rng.Intn(60))))
	default: // symbol + band
		lo := float64(20 + rng.Intn(80))
		return pmcast.Where("symbol", pmcast.OneOf(sym)).
			Where("price", pmcast.Between(lo, lo+60))
	}
}

func mustStr(v pmcast.Value) string {
	s, _ := v.AsString()
	return s
}

func mustFloat(v pmcast.Value) float64 {
	f, _ := v.AsFloat()
	return f
}

func mustInt(v pmcast.Value) int64 {
	i, _ := v.AsInt()
	return i
}

func waitForMembership[T any](items []T, size func(T) int, want int) {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		all := true
		for _, it := range items {
			if size(it) != want {
				all = false
				break
			}
		}
		if all {
			return
		}
		time.Sleep(3 * time.Millisecond)
	}
}
