// Sensornet: topology-aware pmcast under churn. Addresses map to a
// building/floor/room hierarchy; monitoring stations subscribe to alarm
// conditions. The example exercises the membership protocol: a station
// joins late, one leaves gracefully, one crashes and is expelled by the
// failure detector — and alarms keep flowing to the interested survivors.
// Run with: go run ./examples/sensornet
package main

import (
	"fmt"
	"log"
	"time"

	"pmcast"
)

func main() {
	net := pmcast.MustNetwork(pmcast.NetworkConfig{Loss: 0.05, Seed: 3})
	space := pmcast.MustRegularSpace(3, 3) // building.floor.room

	mkNode := func(a string, sub pmcast.Subscription) *pmcast.Node {
		n, err := pmcast.NewNode(net,
			pmcast.WithAddr(pmcast.MustParseAddress(a)),
			pmcast.WithSpace(space),
			pmcast.WithGroupRedundancy(2),
			pmcast.WithFanout(3),
			pmcast.WithPittelC(2),
			pmcast.WithSubscription(sub),
			pmcast.WithGossipInterval(4*time.Millisecond),
			pmcast.WithMembershipInterval(6*time.Millisecond),
			pmcast.WithSuspectAfter(150*time.Millisecond),
		)
		if err != nil {
			log.Fatal(err)
		}
		n.Start()
		return n
	}

	hot := pmcast.Where("temp", pmcast.Gt(75))
	smoke := pmcast.Where("smoke", pmcast.IsBool(true))
	all := pmcast.MatchAll()

	stations := map[string]*pmcast.Node{
		"0.0.0": mkNode("0.0.0", all),   // control room: everything
		"0.0.1": mkNode("0.0.1", hot),   // HVAC monitor, building 0
		"0.1.0": mkNode("0.1.0", hot),   // HVAC monitor, floor 0.1
		"1.0.0": mkNode("1.0.0", smoke), // fire panel, building 1
		"1.0.1": mkNode("1.0.1", smoke),
		"2.0.0": mkNode("2.0.0", hot), // building 2 HVAC
	}
	defer func() {
		for _, n := range stations {
			n.Stop()
		}
	}()
	contact := stations["0.0.0"].Addr()
	for key, n := range stations {
		if key != "0.0.0" {
			must(n.Join(contact))
		}
	}
	waitMembers(stations, len(stations))
	fmt.Printf("sensor fabric up: %d stations\n", len(stations))

	// A hot-temperature alarm: reaches the control room and HVAC monitors.
	must1(stations["2.0.0"].Publish(map[string]pmcast.Value{
		"temp": pmcast.Float(82.5), "room": pmcast.Str("2.0.0"),
	}))
	expectDeliveries(stations, []string{"0.0.0", "0.0.1", "0.1.0", "2.0.0"}, "hot alarm")

	// Late join: a new fire panel in building 2.
	late := mkNode("2.1.0", smoke)
	stations["2.1.0"] = late
	must(late.Join(contact))
	waitMembers(stations, len(stations))
	fmt.Println("station 2.1.0 joined")

	// A smoke alarm reaches the fire panels (old and new) + control room.
	must1(stations["0.0.1"].Publish(map[string]pmcast.Value{
		"smoke": pmcast.Bool(true), "room": pmcast.Str("0.0.1"),
	}))
	expectDeliveries(stations, []string{"0.0.0", "1.0.0", "1.0.1", "2.1.0"}, "smoke alarm")

	// Graceful leave.
	stations["1.0.1"].Leave()
	delete(stations, "1.0.1")
	waitMembers(stations, len(stations))
	fmt.Println("station 1.0.1 left gracefully")

	// Crash: stop without leave; neighbors expel it via failure detection.
	stations["0.1.0"].Stop()
	delete(stations, "0.1.0")
	waitMembers(stations, len(stations))
	fmt.Println("station 0.1.0 crashed and was expelled")

	// The fabric still routes alarms.
	must1(stations["0.0.0"].Publish(map[string]pmcast.Value{
		"temp": pmcast.Float(90), "smoke": pmcast.Bool(true), "room": pmcast.Str("0.0.0"),
	}))
	expectDeliveries(stations, []string{"0.0.0", "0.0.1", "1.0.0", "2.0.0", "2.1.0"}, "combined alarm")
	fmt.Println("sensornet example complete")
}

func expectDeliveries(stations map[string]*pmcast.Node, keys []string, what string) {
	for _, key := range keys {
		n, ok := stations[key]
		if !ok {
			continue
		}
		select {
		case ev := <-n.Deliveries():
			room, _ := ev.Attr("room").AsString()
			fmt.Printf("  %s received %s from %s\n", key, what, room)
		case <-time.After(5 * time.Second):
			fmt.Printf("  %s MISSED %s (gossip is probabilistic; rerun or raise C)\n", key, what)
		}
	}
}

func waitMembers(stations map[string]*pmcast.Node, want int) {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		all := true
		for _, n := range stations {
			if n.KnownMembers() != want {
				all = false
				break
			}
		}
		if all {
			return
		}
		time.Sleep(3 * time.Millisecond)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func must1[T any](_ T, err error) {
	if err != nil {
		log.Fatal(err)
	}
}
