// The multi-process loopback soak: the kernel fast path measured as it
// actually deploys — separate operating-system processes exchanging UDP
// datagrams, not goroutines sharing a fabric. BenchmarkUDPLoopbackSoak
// re-executes the test binary once per fleet member (TestMain dispatches
// the children), streams a publish burst through the fleet, holds both
// modes to a lossless datapath and matched ≥98% delivery, and reports
// events/sec, syscalls/event and datagrams/syscall — the tentpole's
// acceptance numbers, recorded in BENCH_pr9.json by the CI bench job.
package pmcast_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pmcast"
	"pmcast/internal/addr"
	"pmcast/internal/event"
	"pmcast/internal/interest"
	"pmcast/internal/membership"
	"pmcast/internal/node"
)

const soakChildEnv = "PMCAST_UDP_SOAK_CHILD"

// TestMain lets the test binary double as the soak's fleet member: with the
// child environment set, the process runs one UDP node instead of the test
// suite.
func TestMain(m *testing.M) {
	if os.Getenv(soakChildEnv) != "" {
		os.Exit(soakChild())
	}
	os.Exit(m.Run())
}

// soakStats is one child's JSON report, printed as its last stdout line.
type soakStats struct {
	Delivered     int64 `json:"delivered"`
	Expected      int64 `json:"expected"`
	SendSyscalls  int64 `json:"sendSyscalls"`
	SentDatagrams int64 `json:"sentDatagrams"`
	RecvSyscalls  int64 `json:"recvSyscalls"`
	RecvDatagrams int64 `json:"recvDatagrams"`
	GSOSegments   int64 `json:"gsoSegments"`
	GROSegments   int64 `json:"groSegments"`
	Malformed     int64 `json:"malformed"`
	DroppedInbox  int64 `json:"droppedInbox"`
	EgressDropped int64 `json:"egressDropped"`
	ElapsedMs     int64 `json:"elapsedMs"`
}

// Soak shape: 16 processes (4×4 tree — subgroups of four gossip far more
// reliably than binary ones), four of them publishing a burst each, every
// process expected to deliver every event (match-all subscriptions).
const (
	soakArity      = 4
	soakDepth      = 2
	soakPublishers = 4
	soakPerPub     = 300
)

// soakChild runs one fleet member: a staged-engine node on a kernel-batched
// (or, in fallback mode, single-syscall) UDP transport. The roster is
// applied directly — the soak measures the datapath, not the join dance.
func soakChild() int {
	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "soak child:", err)
		return 1
	}
	self := os.Getenv("PMCAST_UDP_SOAK_ADDR")
	mode := os.Getenv("PMCAST_UDP_SOAK_MODE")
	publish, _ := strconv.Atoi(os.Getenv("PMCAST_UDP_SOAK_PUBLISH"))
	peers := map[string]string{}
	for _, kv := range strings.Split(os.Getenv("PMCAST_UDP_SOAK_PEERS"), ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return fail(fmt.Errorf("bad peer entry %q", kv))
		}
		peers[k] = v
	}
	res, err := pmcast.NewStaticResolver(peers)
	if err != nil {
		return fail(err)
	}
	cfg := pmcast.UDPConfig{
		Resolver:    res,
		DeferDecode: true,
		QueueLen:    1 << 16,
		// No silent overflow at burst rates: the modes only compare
		// fairly when neither loses frames in its own layer.
		ReadBufferBytes:  8 << 20,
		WriteBufferBytes: 8 << 20,
	}
	if mode == "fallback" {
		cfg.NoBatchSend = true
		cfg.NoBatchRecv = true
	}
	tr, err := pmcast.NewUDPTransport(cfg)
	if err != nil {
		return fail(err)
	}
	defer tr.Close()

	space := addr.MustRegular(soakArity, soakDepth)
	sub := interest.NewSubscription() // match-all: every event reaches everyone
	recs := make([]membership.Record, space.Capacity())
	for i := range recs {
		recs[i] = membership.Record{Addr: space.AddressAt(i), Sub: sub, Stamp: 1, Alive: true}
	}
	n, err := node.New(tr, node.Config{
		Addr: pmcast.MustParseAddress(self), Space: space,
		// Generous redundancy for a 16-member group: gossip is ε-reliable
		// by design, and the soak compares modes at matched delivery, so
		// fan-out/rounds buy the ε down to the benchmark's floors.
		R: 2, F: 6, C: 8,
		Subscription:       sub,
		GossipInterval:     100 * time.Microsecond,
		MembershipInterval: time.Hour, // membership quiesced: the datapath is the subject
		SuspectAfter:       time.Hour,
		DeliveryBuffer:     1 << 15,
		DecodeWorkers:      2,
		EncodeWorkers:      1, // one egress worker drains the whole queue per flush
		StageQueue:         1 << 13,
	})
	if err != nil {
		return fail(err)
	}
	defer n.Stop()
	n.Membership().Apply(membership.Update{Records: recs})
	if err := n.WarmViews(); err != nil {
		return fail(err)
	}
	n.Start()
	var delivered atomic.Int64
	go func() {
		for range n.Deliveries() {
			delivered.Add(1)
		}
	}()
	total := int64(soakPublishers * soakPerPub)

	// Handshake: announce readiness, then hold the burst until every
	// sibling is up — a child publishing into half-started sockets would
	// measure packet loss, not the datapath.
	fmt.Println("READY")
	sc := bufio.NewScanner(os.Stdin)
	if !sc.Scan() || sc.Text() != "GO" {
		return fail(fmt.Errorf("no GO handshake"))
	}
	start := time.Now()
	if publish > 0 {
		go func() {
			for k := 0; k < soakPerPub; k++ {
				if _, err := n.Publish(map[string]event.Value{
					"b": event.Int(int64(k % 4)),
				}); err != nil {
					fmt.Fprintln(os.Stderr, "soak publish:", err)
					return
				}
				// Pace the burst across a few gossip rounds: an event whose
				// first frames die in an instantaneous 600-event spike has no
				// copies left to recover from, and correlated early death
				// would push the ε-tail below the delivery floors.
				if k%8 == 7 {
					time.Sleep(2 * time.Millisecond)
				}
			}
		}()
	}
	// Quiesce: full delivery, or a long stretch with no progress at all.
	// Elapsed stops at the last observed progress so the idle stall tail
	// (the ε-misses' timeout) does not dilute events/sec.
	last, stalls := delivered.Load(), 0
	lastProgress := time.Now()
	for delivered.Load() < total && stalls < 120 {
		time.Sleep(5 * time.Millisecond)
		if cur := delivered.Load(); cur == last {
			stalls++
		} else {
			last, stalls = cur, 0
			lastProgress = time.Now()
		}
	}
	count := delivered.Load()
	elapsed := lastProgress.Sub(start)

	st := tr.Stats()
	egressDropped, _ := n.EngineStats()
	out, err := json.Marshal(soakStats{
		Delivered:     count,
		Expected:      total,
		SendSyscalls:  st.SendSyscalls,
		SentDatagrams: st.SentDatagrams,
		RecvSyscalls:  st.RecvSyscalls,
		RecvDatagrams: st.RecvDatagrams,
		GSOSegments:   st.GSOSegments,
		GROSegments:   st.GROSegments,
		Malformed:     st.Malformed,
		DroppedInbox:  st.Dropped,
		EgressDropped: egressDropped,
		ElapsedMs:     elapsed.Milliseconds(),
	})
	if err != nil {
		return fail(err)
	}
	fmt.Println(string(out))
	return 0
}

// runSoakFleet spawns one child process per address, releases the publish
// burst once every member is up, and aggregates the children's reports.
func runSoakFleet(b *testing.B, mode string) (totals soakStats, wall time.Duration) {
	b.Helper()
	space := addr.MustRegular(soakArity, soakDepth)
	specs := make([]string, space.Capacity())
	addrs := make([]string, space.Capacity())
	for i := range specs {
		port, err := freeSoakPort()
		if err != nil {
			b.Fatal(err)
		}
		addrs[i] = space.AddressAt(i).String()
		specs[i] = fmt.Sprintf("%s=127.0.0.1:%d", addrs[i], port)
	}
	peerSpec := strings.Join(specs, ",")

	type child struct {
		cmd   *exec.Cmd
		stdin io.WriteCloser
		out   *bufio.Scanner
	}
	children := make([]child, len(addrs))
	for i, a := range addrs {
		cmd := exec.Command(os.Args[0], "-test.run=^$")
		cmd.Env = append(os.Environ(),
			soakChildEnv+"=1",
			"PMCAST_UDP_SOAK_ADDR="+a,
			"PMCAST_UDP_SOAK_PEERS="+peerSpec,
			"PMCAST_UDP_SOAK_MODE="+mode,
			fmt.Sprintf("PMCAST_UDP_SOAK_PUBLISH=%d", boolToInt(i < soakPublishers)),
		)
		stdin, err := cmd.StdinPipe()
		if err != nil {
			b.Fatal(err)
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			b.Fatal(err)
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			b.Fatal(err)
		}
		children[i] = child{cmd: cmd, stdin: stdin, out: bufio.NewScanner(stdout)}
	}
	// Every member up before anyone publishes.
	for i := range children {
		if !children[i].out.Scan() || children[i].out.Text() != "READY" {
			b.Fatalf("child %s never became ready", addrs[i])
		}
	}
	begin := time.Now()
	for i := range children {
		if _, err := io.WriteString(children[i].stdin, "GO\n"); err != nil {
			b.Fatalf("child %s: %v", addrs[i], err)
		}
	}
	for i := range children {
		if !children[i].out.Scan() {
			b.Fatalf("child %s exited without a report", addrs[i])
		}
		var st soakStats
		if err := json.Unmarshal(children[i].out.Bytes(), &st); err != nil {
			b.Fatalf("child %s report %q: %v", addrs[i], children[i].out.Text(), err)
		}
		// The syscall comparison only holds at matched delivery: a mode
		// that lost frames in ITS layer would fake better ratios. The
		// datapath must be lossless (the three counters), while delivery
		// itself is the paper's probabilistic guarantee — gossip rounds
		// are Pittel-bounded, so a small ε-tail of misses is by design
		// and identical in both modes. Hold each child to ε ≤ 5% and the
		// fleet to ε ≤ 2%, and record the achieved rate as a metric so
		// the equal-delivery claim is auditable in BENCH_pr9.json.
		if st.Malformed != 0 || st.DroppedInbox != 0 || st.EgressDropped != 0 {
			b.Fatalf("child %s (%s) lost frames in the datapath: malformed %d, dropped %d, egress-dropped %d",
				addrs[i], mode, st.Malformed, st.DroppedInbox, st.EgressDropped)
		}
		if st.Delivered < st.Expected*95/100 {
			b.Fatalf("child %s (%s): delivered %d/%d, below the 95%% floor",
				addrs[i], mode, st.Delivered, st.Expected)
		}
		totals.Expected += st.Expected
		totals.Delivered += st.Delivered
		totals.SendSyscalls += st.SendSyscalls
		totals.SentDatagrams += st.SentDatagrams
		totals.RecvSyscalls += st.RecvSyscalls
		totals.RecvDatagrams += st.RecvDatagrams
		totals.GSOSegments += st.GSOSegments
		totals.GROSegments += st.GROSegments
		if ms := time.Duration(st.ElapsedMs) * time.Millisecond; ms > wall {
			wall = ms
		}
		children[i].stdin.Close()
		if err := children[i].cmd.Wait(); err != nil {
			b.Fatalf("child %s: %v", addrs[i], err)
		}
	}
	if w := time.Since(begin); w > wall {
		wall = w
	}
	return totals, wall
}

// BenchmarkUDPLoopbackSoak is the tentpole's proof: the same 16-process
// fleet and publish burst over real loopback UDP, once per syscall path.
// The acceptance criterion is ≥4× fewer syscalls/event and higher
// events/sec for batched vs fallback at matched delivery — both modes must
// be datapath-lossless and reach the same ≥98% fleet delivery rate (gossip
// is ε-reliable by design, so "all 9600" is not the bar the paper sets);
// the achieved rate is reported alongside the ratios in BENCH_pr9.json.
func BenchmarkUDPLoopbackSoak(b *testing.B) {
	for _, mode := range []string{"fallback", "batched"} {
		b.Run(mode, func(b *testing.B) {
			var syscalls, datagrams, delivered, expected float64
			var wall time.Duration
			for i := 0; i < b.N; i++ {
				totals, w := runSoakFleet(b, mode)
				syscalls += float64(totals.SendSyscalls + totals.RecvSyscalls)
				datagrams += float64(totals.SentDatagrams + totals.RecvDatagrams)
				delivered += float64(totals.Delivered)
				expected += float64(totals.Expected)
				wall += w
			}
			if delivered == 0 || syscalls == 0 {
				b.Fatal("soak produced no traffic")
			}
			rate := delivered / expected
			if rate < 0.98 {
				b.Fatalf("fleet delivery rate %.4f below the 98%% floor", rate)
			}
			b.ReportMetric(rate, "delivery-rate")
			b.ReportMetric(delivered/wall.Seconds(), "events/sec")
			b.ReportMetric(syscalls/delivered, "syscalls/event")
			b.ReportMetric(datagrams/syscalls, "datagrams/syscall")
		})
	}
}

func boolToInt(v bool) int {
	if v {
		return 1
	}
	return 0
}

// freeSoakPort reserves an ephemeral loopback UDP port and releases it for
// a child to re-bind.
func freeSoakPort() (int, error) {
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return 0, err
	}
	port := conn.LocalAddr().(*net.UDPAddr).Port
	return port, conn.Close()
}
