package pmcast

import "time"

// NodeOption configures one knob of a node under construction. Options keep
// NewNode's signature stable while NodeConfig grows: adding a knob adds an
// option, never a breaking change.
type NodeOption func(*NodeConfig)

// WithConfig replaces the whole configuration at once — the bulk escape
// hatch for callers that already hold a NodeConfig. Options applied after
// it refine the given config.
func WithConfig(cfg NodeConfig) NodeOption {
	return func(c *NodeConfig) { *c = cfg }
}

// WithAddr sets the node's hierarchical address (its place in the tree).
func WithAddr(a Address) NodeOption {
	return func(c *NodeConfig) { c.Addr = a }
}

// WithSpace sets the shared address space (depth d and arities).
func WithSpace(s Space) NodeOption {
	return func(c *NodeConfig) { c.Space = s }
}

// WithGroupRedundancy sets the paper's redundancy factor R (delegates per
// subgroup).
func WithGroupRedundancy(r int) NodeOption {
	return func(c *NodeConfig) { c.R = r }
}

// WithRedundancy enables the erasure-coding layer: each gossip round's
// outgoing events are grouped into generations of k source symbols, and r
// repair symbols per generation ride the batch envelopes toward the same
// destination subtree. Any k of the k+r symbols reconstruct the
// generation, so a receiver recovers events whose every wire copy was
// lost. r = 0 disables coding entirely — the wire format, fault draws and
// seeded traces are byte-identical to a build without this option.
func WithRedundancy(k, r int) NodeOption {
	return func(c *NodeConfig) {
		c.FECSources = k
		c.FECRepairs = r
	}
}

// WithFanout sets the gossip fanout F.
func WithFanout(f int) NodeOption {
	return func(c *NodeConfig) { c.F = f }
}

// WithPittelC sets Pittel's constant c for round budgets (Eq. 3).
func WithPittelC(v float64) NodeOption {
	return func(c *NodeConfig) { c.C = v }
}

// WithSubscription sets the node's initial interest.
func WithSubscription(sub Subscription) NodeOption {
	return func(c *NodeConfig) { c.Subscription = sub }
}

// WithGossipInterval sets the gossip period P (default 25ms).
func WithGossipInterval(d time.Duration) NodeOption {
	return func(c *NodeConfig) { c.GossipInterval = d }
}

// WithMembershipInterval sets the membership digest period (default
// 4·GossipInterval).
func WithMembershipInterval(d time.Duration) NodeOption {
	return func(c *NodeConfig) { c.MembershipInterval = d }
}

// WithMembershipFanout sets how many peers receive each digest (default 2).
func WithMembershipFanout(f int) NodeOption {
	return func(c *NodeConfig) { c.MembershipFanout = f }
}

// WithSuspectAfter configures the failure detector's silence deadline
// (default 20 membership intervals).
func WithSuspectAfter(d time.Duration) NodeOption {
	return func(c *NodeConfig) { c.SuspectAfter = d }
}

// WithSuspicionSweeps sets how many consecutive over-deadline sweeps expel
// a silent neighbor (default 1; >1 enables the Section 6 confirmation
// phase).
func WithSuspicionSweeps(n int) NodeOption {
	return func(c *NodeConfig) { c.SuspicionSweeps = n }
}

// WithThreshold sets the Section 5.3 tuning parameter h (0 = untuned).
func WithThreshold(h int) NodeOption {
	return func(c *NodeConfig) { c.Threshold = h }
}

// WithLocalDescent enables the Section 3.2 start-depth rule.
func WithLocalDescent(on bool) NodeOption {
	return func(c *NodeConfig) { c.LocalDescent = on }
}

// WithLeafFlooding enables the Section 6 leaf-flooding extension (0 = off).
func WithLeafFlooding(rate float64) NodeOption {
	return func(c *NodeConfig) { c.LeafFloodRate = rate }
}

// WithAdaptiveFanout closes the Section 5.3 tuning loop over measured loss.
// The node runs a passive per-peer loss estimator — beacons piggybacked on
// the digests and heartbeats it already sends, so the estimator costs a few
// bytes per membership message and no extra envelopes — and the gossip core
// consumes the estimates two ways: round budgets widen where a view's
// measured loss exceeds the configured assumption, and each gossip round
// samples up to boost extra targets (0 = default 2) when the sampled peers'
// estimated loss crosses lossThreshold (0 = default 0.05). With defaults the
// adaptation is strictly demand-driven: on a clean network it changes
// nothing — budgets, targets and the node's RNG stream are byte-identical
// to a non-adaptive node.
func WithAdaptiveFanout(boost int, lossThreshold float64) NodeOption {
	return func(c *NodeConfig) {
		c.AdaptiveFanout = true
		c.AdaptiveBoost = boost
		c.AdaptiveLossThreshold = lossThreshold
	}
}

// WithoutBatching disables the batched gossip pipeline: every gossip,
// digest and heartbeat goes out as its own envelope. Batching is a pure
// envelope-level aggregation (the per-peer sub-messages and their order are
// identical either way), so this knob exists for A/B cost measurement, not
// as a protocol variant.
func WithoutBatching() NodeOption {
	return func(c *NodeConfig) { c.NoBatch = true }
}

// WithWireMeasurement enables sender-side wire accounting: each outgoing
// envelope's encoded size is summed into Node.WireStats. Costs one pooled
// encode per envelope.
func WithWireMeasurement(on bool) NodeOption {
	return func(c *NodeConfig) { c.MeasureWire = on }
}

// WithParallelism sets the staged engine's worker counts: decode ingress
// workers draining the transport endpoint (each with its own interning wire
// decoder) and encode/send egress workers consuming the protocol stage's
// per-peer send jobs. The protocol stage itself is always exactly one
// goroutine — the single writer of membership, tree views and gossip state.
// (0, 0), the default, collapses all three stages onto that goroutine: the
// serial loop whose seeded runs the deterministic harness replays
// byte-identically. Multicore deployments pass runtime.NumCPU()-sized
// counts; pair decode workers with the UDP transport's DeferDecode so the
// datagram unframing actually lands on them.
func WithParallelism(decode, encode int) NodeOption {
	return func(c *NodeConfig) {
		c.DecodeWorkers = decode
		c.EncodeWorkers = encode
	}
}

// WithStageQueue bounds the queues between engine stages (default 1024).
// A full ingress queue backpressures into the transport inbox (which drops,
// like a UDP socket buffer); a full egress queue drops the send job and
// counts it in Node.EngineStats — the protocol stage never blocks.
func WithStageQueue(depth int) NodeOption {
	return func(c *NodeConfig) { c.StageQueue = depth }
}

// WithDeliveryBuffer sizes the Deliveries channel (default 256).
func WithDeliveryBuffer(n int) NodeOption {
	return func(c *NodeConfig) { c.DeliveryBuffer = n }
}

// WithSeed seeds the node RNG (0 derives one from the address).
func WithSeed(seed int64) NodeOption {
	return func(c *NodeConfig) { c.Seed = seed }
}

// WithClock supplies the clock driving the node's timers and failure
// detector (default: the real clock). Injecting a virtual clock
// (NewVirtualClock) makes the runtime deterministic for tests and replayable
// chaos campaigns.
func WithClock(clk Clock) NodeOption {
	return func(c *NodeConfig) { c.Clock = clk }
}
