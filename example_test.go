package pmcast_test

import (
	"fmt"

	"pmcast"
)

// ExampleWhere shows the subscription language mirroring the paper's
// Figure 2 interests.
func ExampleWhere() {
	sub := pmcast.Where("b", pmcast.EqInt(2)).
		Where("c", pmcast.Gt(40.0)).
		Where("z", pmcast.EqInt(20000))
	fmt.Println(sub)

	ev := pmcast.NewEventBuilder().
		Int("b", 2).Float("c", 41.5).Int("z", 20000).
		Build(pmcast.EventID{Origin: "128.178.73.3", Seq: 1})
	fmt.Println(sub.Matches(ev))
	// Output:
	// b = 2, c > 40, z = 20000
	// true
}

// ExampleSummarize shows interest regrouping: the summary over-approximates
// the union of subscriptions within a bounded size.
func ExampleSummarize() {
	sum := pmcast.Summarize(
		pmcast.Where("b", pmcast.Gt(3)),
		pmcast.Where("b", pmcast.Gt(0)), // subsumes the first: absorbed
		pmcast.Where("e", pmcast.OneOf("Bob", "Tom")),
	)
	fmt.Println(sum)
	// Output:
	// b > 0 | e = "Bob" ∨ "Tom"
}

// ExampleNewTreeModel evaluates the paper's analytical model (Section 4) at
// the Figure 4 configuration.
func ExampleNewTreeModel() {
	m, err := pmcast.NewTreeModel(pmcast.TreeParams{
		A: 22, D: 3, R: 3, F: 2, Pd: 0.5,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("audience: %d processes\n", int(float64(m.Params().N())*0.5))
	fmt.Printf("reliability degree > 0.9: %v\n", m.Reliability() > 0.9)
	// Output:
	// audience: 5324 processes
	// reliability degree > 0.9: true
}

// ExamplePittel evaluates Eq. 3, the round bound that garbage-collects
// gossip buffers.
func ExamplePittel() {
	fmt.Printf("T(10000, 2) = %.1f rounds\n", pmcast.Pittel(10000, 2, 0))
	fmt.Printf("T(1, 2) = %.1f rounds\n", pmcast.Pittel(1, 2, 0))
	// Output:
	// T(10000, 2) = 13.0 rounds
	// T(1, 2) = 0.0 rounds
}

// ExampleNewSimulator reproduces one Figure 4 data point.
func ExampleNewSimulator() {
	s, err := pmcast.NewSimulator(pmcast.SimParams{A: 10, D: 2, R: 3, F: 2})
	if err != nil {
		panic(err)
	}
	agg, err := s.RunMany(0.5, 10, 42)
	if err != nil {
		panic(err)
	}
	fmt.Printf("delivery > 0.95: %v\n", agg.Delivery.Mean() > 0.95)
	// Output:
	// delivery > 0.95: true
}

// ExampleMustParseAddress shows hierarchical addressing and distance.
func ExampleMustParseAddress() {
	a := pmcast.MustParseAddress("128.178.73.3")
	b := pmcast.MustParseAddress("128.178.88.10")
	fmt.Println(a.Distance(b)) // share prefix 128.178 → distance d−i+1 = 2
	fmt.Println(a.Prefix(3))
	// Output:
	// 2
	// 128.178
}
